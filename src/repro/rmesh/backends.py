"""Pluggable solver backends for the stacked R-mesh DC solve.

:class:`~repro.rmesh.solve.StackSolver` historically had exactly one
strategy: one SuperLU factorization per stack, many back-substitutions.
That is the right call at the paper's production mesh resolution (a few
thousand nodes) but it caps how fine a mesh is routinely solvable -- the
reference-grid discretization in :mod:`repro.rmesh.reference` carries an
order of magnitude more resistors and a direct factorization of it is
the dominant cold-path cost.

This module makes the strategy pluggable:

``direct``
    The historical SuperLU path, **bitwise identical** to what
    ``StackSolver`` always produced, and still the default.

``cg``
    Preconditioned conjugate gradient.  The conductance matrix is
    symmetric positive definite (diagonally dominant M-matrix with at
    least one supply link), so CG is applicable with any *symmetric*
    preconditioner:

    * ``jacobi`` -- diagonal scaling.  Free to set up, matrix-free to
      apply; the scalable choice for meshes far beyond the direct
      solver's comfort zone (SRAM-PG-style stress grids).
    * ``factor`` (default) -- a complete SuperLU factorization used as
      the preconditioner.  On its own matrix CG then converges in one
      iteration (it *is* the direct solve, plus a residual check); its
      value is that the factorization of a *neighboring* sweep point is
      an excellent preconditioner for a knob-perturbed matrix -- a TSV
      pitch tweak barely perturbs the spectrum -- which is what the
      warm-start layer (:mod:`repro.pdn.sweep`) exploits: one
      factorization per sweep, a handful of CG iterations per point.

      Note an *incomplete* LU (``scipy.sparse.linalg.spilu``) is **not**
      usable here: ILU factors are nonsymmetric, which silently breaks
      CG's three-term recurrence (observed: stagnation at ~1e-2
      residuals).  A complete factorization of an SPD matrix, applied as
      ``x -> U^-1 L^-1 x``, is its exact SPD inverse up to rounding.

``amg``
    Algebraic multigrid via ``pyamg`` when importable -- the smoothed-
    aggregation hierarchy is itself a reusable preconditioner for CG.
    When ``pyamg`` is missing the backend **falls back to ``cg``** with
    a one-time warning and a ``solver.amg_fallbacks`` counter bump, so
    ``REPRO_SOLVER=amg`` is safe to set everywhere.

Selection order: explicit argument > ``REPRO_SOLVER`` environment
variable > ``direct``.  Iteration counts, preconditioner reuse, and
setup times are threaded into the obs metrics registry under
``solver.*`` names so bench records attribute wall time to backends.
"""

from __future__ import annotations

import os
import threading
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro import envcfg
from repro.errors import ConfigurationError, SolverError
from repro.obs import metrics as _metrics
from repro.obs.log import get_logger
from repro.obs.profile import BoundedSeries
from repro.obs.trace import span
from repro.resil import faults as _faults

_log = get_logger("rmesh.backends")

#: Environment variable selecting the process-default backend.
SOLVER_ENV = "REPRO_SOLVER"

#: Environment knobs for the iterative path.
CG_RTOL_ENV = "REPRO_CG_RTOL"
CG_MAXITER_ENV = "REPRO_CG_MAXITER"
CG_PRECOND_ENV = "REPRO_CG_PRECOND"

#: Known backend names, resolution-order independent.
BACKENDS = ("direct", "cg", "amg")

#: Known preconditioner kinds for the cg backend.
PRECONDITIONERS = ("factor", "jacobi")

DEFAULT_BACKEND = "direct"
DEFAULT_CG_RTOL = 1e-10
DEFAULT_CG_PRECOND = "factor"

#: Environment switch for per-iteration convergence tracing ("0" disables).
CONVERGENCE_TRACE_ENV = "REPRO_CONVERGENCE_TRACE"

#: Trace every Nth solve per operator (the first is always traced).
TRACE_EVERY_ENV = "REPRO_TRACE_EVERY"
DEFAULT_TRACE_EVERY = 8

#: Max stored residual points per trace (stride-doubling decimation).
TRACE_POINT_CAP = 64

#: Within a traced solve, residuals are computed at power-of-two
#: iterations plus every RECORD_EVERY-th (each costs one matvec); the
#: exact final point is pinned after the solve returns.
RECORD_EVERY = 64

#: Process-global convergence-trace buffer cap.
MAX_TRACES = 512

_amg_warned = False


# ---------------------------------------------------------------------------
# Convergence traces (per-iteration residual histories)
# ---------------------------------------------------------------------------


@dataclass
class ResidualTrace:
    """One iterative solve's residual history, bounded and serializable.

    ``points`` is a ``[iteration, relative residual]`` curve including
    the initial residual at iteration 0, downsampled to at most
    :data:`TRACE_POINT_CAP` points with endpoints preserved
    (:class:`repro.obs.profile.BoundedSeries`); ``stride`` reports the
    decimation level so readers know the interior sampling density.  A
    stalled preconditioner shows up as a flat curve here instead of
    having to be inferred from an iteration count.
    """

    backend: str
    preconditioner: str
    nodes: int
    rtol: float
    warm_start: bool
    iterations: int
    converged: bool
    final_residual: float
    points: List[List[float]] = field(default_factory=list)
    stride: int = 1

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ResidualTrace":
        return cls(**data)


_trace_lock = threading.Lock()
_traces: List[ResidualTrace] = []
_traces_dropped = 0


def trace_enabled() -> bool:
    """Whether iterative solves record residual histories (default on)."""
    return os.environ.get(CONVERGENCE_TRACE_ENV, "1") not in ("", "0")


def trace_every() -> int:
    """Sampling period: one traced solve per this many (min 1)."""
    raw = os.environ.get(TRACE_EVERY_ENV, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_TRACE_EVERY


def record_trace(trace: ResidualTrace) -> None:
    """Append a trace to the bounded process-global buffer."""
    global _traces_dropped
    with _trace_lock:
        if len(_traces) < MAX_TRACES:
            _traces.append(trace)
        else:
            _traces_dropped += 1


def trace_count() -> int:
    with _trace_lock:
        return len(_traces)


def traces(since: int = 0) -> List[ResidualTrace]:
    """Copy of the trace buffer (optionally from an index)."""
    with _trace_lock:
        return list(_traces[since:])


def export_traces(since: int = 0) -> List[Dict[str, object]]:
    """Traces as plain dicts -- picklable across process boundaries."""
    return [t.to_dict() for t in traces(since)]


def absorb_traces(records: List[Dict[str, object]]) -> None:
    """Merge traces exported by a worker process into this buffer."""
    for data in records:
        record_trace(ResidualTrace.from_dict(dict(data)))


def reset_traces() -> None:
    """Drop all buffered convergence traces."""
    global _traces_dropped
    with _trace_lock:
        _traces.clear()
        _traces_dropped = 0


def resolve_backend(choice: Optional[str] = None) -> str:
    """Resolve a backend name: argument > ``REPRO_SOLVER`` > direct."""
    name = choice or os.environ.get(SOLVER_ENV) or DEFAULT_BACKEND
    name = name.strip().lower()
    if name not in BACKENDS:
        raise ConfigurationError(
            f"unknown solver backend {name!r}; known: {list(BACKENDS)} "
            f"(set via argument or {SOLVER_ENV})"
        )
    return name


def _cg_rtol() -> float:
    # Env knobs warn-and-default (repro.envcfg): a typo'd tolerance must
    # not throw away a half-finished sweep.
    return envcfg.env_float(CG_RTOL_ENV, DEFAULT_CG_RTOL, minimum=0.0)


def _cg_precond() -> str:
    return envcfg.env_choice(
        CG_PRECOND_ENV, DEFAULT_CG_PRECOND, PRECONDITIONERS
    )


def _cg_maxiter(num_nodes: int) -> int:
    # Jacobi-CG on these meshes needs a few hundred iterations; leave
    # ample headroom before declaring divergence.
    fallback = max(10 * num_nodes, 2000)
    return envcfg.env_int(CG_MAXITER_ENV, fallback, minimum=1)


# ---------------------------------------------------------------------------
# Preconditioners (the warm-start reuse unit)
# ---------------------------------------------------------------------------


class Preconditioner:
    """A symmetric preconditioner: ``kind``, shape, and an apply operator."""

    kind: str = "none"

    def __init__(self, shape) -> None:
        self.shape = shape

    def operator(self) -> spla.LinearOperator:  # pragma: no cover - abstract
        raise NotImplementedError

    def compatible_with(self, matrix: sp.spmatrix) -> bool:
        """Whether this preconditioner can serve ``matrix`` (shape match).

        Sweep neighbors keep the node numbering (knob-only plan diffs),
        so a shape match is exactly the reuse precondition the warm-start
        layer checks before handing a previous point's preconditioner in.
        """
        return tuple(self.shape) == tuple(matrix.shape)


class JacobiPreconditioner(Preconditioner):
    """Diagonal scaling: free setup, matrix-free apply."""

    kind = "jacobi"

    def __init__(self, matrix: sp.spmatrix) -> None:
        super().__init__(matrix.shape)
        diag = matrix.diagonal()
        if np.any(diag <= 0.0):
            raise SolverError(
                "conductance matrix has non-positive diagonal entries",
                bad=int(np.count_nonzero(diag <= 0.0)),
            )
        self._inv_diag = 1.0 / diag

    def operator(self) -> spla.LinearOperator:
        inv = self._inv_diag
        return spla.LinearOperator(self.shape, matvec=lambda v: v * inv)


class FactorPreconditioner(Preconditioner):
    """A complete SuperLU factorization applied as an SPD inverse.

    Built from one matrix, reusable for spectrally-nearby ones: the
    warm-start layer hands the previous sweep point's instance to the
    next point's solver, replacing a fresh factorization with a few CG
    iterations.
    """

    kind = "factor"

    def __init__(self, matrix: sp.spmatrix) -> None:
        super().__init__(matrix.shape)
        try:
            self._lu = spla.splu(matrix.tocsc())
        except RuntimeError as exc:  # singular matrix
            raise SolverError(
                f"preconditioner factorization failed: {exc}",
                num_nodes=matrix.shape[0],
            ) from exc

    def operator(self) -> spla.LinearOperator:
        return spla.LinearOperator(self.shape, matvec=self._lu.solve)


def make_preconditioner(kind: str, matrix: sp.spmatrix) -> Preconditioner:
    """Build a preconditioner of ``kind`` for ``matrix``."""
    if kind == "jacobi":
        return JacobiPreconditioner(matrix)
    if kind == "factor":
        return FactorPreconditioner(matrix)
    raise ConfigurationError(
        f"unknown preconditioner kind {kind!r}; known: {list(PRECONDITIONERS)}"
    )


# ---------------------------------------------------------------------------
# Operators (one factorized/preconditioned system, many right-hand sides)
# ---------------------------------------------------------------------------


class SolverOperator:
    """One prepared linear system: solve many right-hand sides.

    ``iterations`` is the iteration count of the *last* solve (0 for the
    direct path); ``total_iterations`` accumulates across solves.
    ``preconditioner`` is the reusable setup artifact (None for direct).
    """

    name: str = "none"

    def __init__(self) -> None:
        self.iterations = 0
        self.total_iterations = 0
        self.preconditioner: Optional[Preconditioner] = None
        self.reused_preconditioner = False
        #: Residual history of the last solve when it was traced; None for
        #: the direct path and for untraced (sampled-out) solves, so a
        #: consumer never mistakes a stale curve for the current solve's.
        self.last_trace: Optional[ResidualTrace] = None
        self._solve_index = 0

    def solve(
        self, rhs: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def solve_block(
        self, block: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Solve ``k`` right-hand sides; returns a Fortran-ordered block.

        ``x0`` may be one vector (shared initial guess) or a matching
        ``(n, k)`` block.  Column ``i`` of the result is bitwise
        identical to ``solve(block[:, i], x0_i)``.
        """
        out = np.empty_like(block, order="F")
        for i in range(block.shape[1]):
            guess = None
            if x0 is not None:
                guess = x0 if x0.ndim == 1 else x0[:, i]
            out[:, i] = self.solve(block[:, i], x0=guess)
        return out


class DirectOperator(SolverOperator):
    """The historical SuperLU path; bitwise identical to the old solver."""

    name = "direct"

    def __init__(self, matrix: sp.spmatrix) -> None:
        super().__init__()
        try:
            self._lu = spla.splu(matrix)
        except RuntimeError as exc:  # singular matrix
            raise SolverError(
                f"factorization failed: {exc}",
                num_nodes=matrix.shape[0],
            ) from exc

    def solve(
        self, rhs: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> np.ndarray:
        # x0 is deliberately ignored: a direct solve has no warm start,
        # and accepting it keeps the call sites backend-agnostic.
        return self._lu.solve(rhs)

    def solve_block(
        self, block: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> np.ndarray:
        # The whole block goes through SuperLU's triangular solves in a
        # single call, amortizing the sparse traversal over all RHS.
        return np.asfortranarray(self._lu.solve(np.asfortranarray(block)))


class CGOperator(SolverOperator):
    """Preconditioned conjugate gradient over one conductance matrix."""

    name = "cg"

    def __init__(
        self,
        matrix: sp.spmatrix,
        preconditioner: Optional[Preconditioner] = None,
        precond_kind: Optional[str] = None,
        rtol: Optional[float] = None,
        maxiter: Optional[int] = None,
    ) -> None:
        super().__init__()
        self._matrix = matrix.tocsr()
        self.rtol = rtol if rtol is not None else _cg_rtol()
        self.maxiter = maxiter or _cg_maxiter(matrix.shape[0])
        kind = precond_kind or _cg_precond()
        if preconditioner is not None and preconditioner.compatible_with(matrix):
            self.preconditioner = preconditioner
            self.reused_preconditioner = True
            _metrics.inc("solver.preconditioner_reuses")
        else:
            self.preconditioner = make_preconditioner(kind, matrix)
            _metrics.inc("solver.preconditioner_builds")
        self._M = self.preconditioner.operator()

    def solve(
        self, rhs: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> np.ndarray:
        count = [0]
        # Residual tracing costs an extra matvec per *recorded* point
        # (the CG callback only sees the iterate, not the recurrence
        # residual).  Two levels of sampling keep it invisible in wall
        # time: solves are sampled (first per operator, then every
        # trace_every()-th), and within a traced solve residuals are
        # only computed on a log-dense iteration schedule -- powers of
        # two plus every RECORD_EVERY-th -- a handful of matvecs even
        # for thousand-iteration solves, matching the roughly
        # exponential decay the curve describes.  The callback never
        # feeds back into CG, so traced and untraced solves are bitwise
        # identical.
        # Chaos hook: an injected ConvergenceStallFault is a SolverError,
        # so it takes exactly the path a real non-convergence takes --
        # including the escalation ladder when one is wrapped around us.
        _faults.check_cg(
            f"{self._matrix.shape[0]}", attempt=self._solve_index
        )
        traced = trace_enabled() and self._solve_index % trace_every() == 0
        self._solve_index += 1
        series: Optional[BoundedSeries] = None
        rhs_norm = 0.0
        if traced:
            rhs_norm = float(np.linalg.norm(rhs))
            series = BoundedSeries(cap=TRACE_POINT_CAP)
            if x0 is None:
                # Cold start: the initial residual is b itself, so the
                # relative residual is exactly 1 -- no matvec needed.
                series.append(0.0, 1.0 if rhs_norm > 0.0 else 0.0)
            else:
                r0 = float(np.linalg.norm(rhs - self._matrix @ x0))
                series.append(0.0, r0 / rhs_norm if rhs_norm > 0.0 else r0)

        def _rel_residual(xk: np.ndarray) -> float:
            r = float(np.linalg.norm(rhs - self._matrix @ xk))
            return r / rhs_norm if rhs_norm > 0.0 else r

        def _tick(xk: np.ndarray) -> None:
            n = count[0] = count[0] + 1
            if series is not None and (n & (n - 1) == 0 or n % RECORD_EVERY == 0):
                series.append(n, _rel_residual(xk))

        x, info = spla.cg(
            self._matrix,
            rhs,
            x0=x0,
            rtol=self.rtol,
            atol=0.0,
            maxiter=self.maxiter,
            M=self._M,
            callback=_tick,
        )
        self.iterations = count[0]
        self.total_iterations += count[0]
        _metrics.inc("solver.cg_iterations", count[0])
        if series is not None:
            # Lazy in-solve recording may have skipped the closing
            # iterations; pin the curve's exact endpoint (one matvec).
            if count[0] > 0:
                series.append(count[0], _rel_residual(x))
            pts = series.points()
            trace = ResidualTrace(
                backend=self.name,
                preconditioner=self.preconditioner.kind,
                nodes=int(self._matrix.shape[0]),
                rtol=self.rtol,
                warm_start=x0 is not None,
                iterations=count[0],
                converged=info == 0,
                final_residual=pts[-1][1] if pts else 0.0,
                points=[[p[0], p[1]] for p in pts],
                stride=series.stride,
            )
            record_trace(trace)
            self.last_trace = trace
        else:
            self.last_trace = None
        if info > 0:
            raise SolverError(
                f"cg failed to converge within {self.maxiter} iterations",
                rtol=self.rtol,
                iterations=count[0],
                preconditioner=self.preconditioner.kind,
                warm_start=x0 is not None,
            )
        if info < 0:  # pragma: no cover - scipy input validation
            raise SolverError(f"cg reported illegal input (info={info})")
        return x


class AMGOperator(SolverOperator):
    """CG accelerated by a pyamg smoothed-aggregation hierarchy.

    The hierarchy is the reusable setup artifact, wrapped so the
    warm-start layer can pass it between sweep neighbors exactly like a
    :class:`FactorPreconditioner`.
    """

    name = "amg"

    class _Hierarchy(Preconditioner):
        kind = "amg"

        def __init__(self, matrix: sp.spmatrix) -> None:
            import pyamg

            super().__init__(matrix.shape)
            self._ml = pyamg.smoothed_aggregation_solver(matrix.tocsr())

        def operator(self) -> spla.LinearOperator:
            return self._ml.aspreconditioner(cycle="V")

    def __init__(
        self,
        matrix: sp.spmatrix,
        preconditioner: Optional[Preconditioner] = None,
        rtol: Optional[float] = None,
        maxiter: Optional[int] = None,
    ) -> None:
        super().__init__()
        self._matrix = matrix.tocsr()
        self.rtol = rtol if rtol is not None else _cg_rtol()
        self.maxiter = maxiter or _cg_maxiter(matrix.shape[0])
        if preconditioner is not None and preconditioner.compatible_with(matrix):
            self.preconditioner = preconditioner
            self.reused_preconditioner = True
            _metrics.inc("solver.preconditioner_reuses")
        else:
            self.preconditioner = AMGOperator._Hierarchy(matrix)
            _metrics.inc("solver.preconditioner_builds")
        self._M = self.preconditioner.operator()

    solve = CGOperator.solve  # same CG acceleration, different M


#: Environment switch for solver escalation ("0" disables).
ESCALATION_ENV = "REPRO_SOLVER_ESCALATE"


def escalation_enabled() -> bool:
    """Whether iterative non-convergence escalates (default on)."""
    return os.environ.get(ESCALATION_ENV, "1") not in ("", "0")


class EscalatingOperator:
    """Degrade-but-complete wrapper around an iterative operator.

    A CG/AMG solve that fails to converge (ill-conditioned stress mesh,
    drifted warm-start preconditioner, injected stall) historically
    surfaced as a hard :class:`~repro.errors.SolverError`.  This wrapper
    turns it into a degraded-but-correct answer by climbing a ladder:

    1. retry the solve with a *stronger* preconditioner -- a fresh
       complete factorization (``factor``) of this very matrix -- when
       the failing operator was using something weaker (``jacobi``);
    2. fall back to the ``direct`` SuperLU path, which cannot
       not-converge.

    The ladder is sticky: once a stronger CG operator succeeds it
    serves subsequent solves; once the direct fallback is built it
    handles them outright.  ``escalation`` records the highest rung
    used (``None`` / ``"factor"`` / ``"direct"``) and is threaded onto
    :class:`~repro.rmesh.solve.IRDropResult` provenance; each climb
    bumps ``resil.solver_escalations`` (+ per-rung counters) inside a
    ``resil.solver_escalation`` trace span.

    Escalation changes *which* solver produced the answer, so results
    after a direct fallback are bitwise those of the direct backend --
    which is exactly the degraded contract: correct physics, provenance
    recorded, sweep not lost.  Raw operators used without the wrapper
    (``escalation_enabled() == False`` or direct construction) keep the
    historical raise-on-non-convergence semantics.
    """

    def __init__(self, inner: SolverOperator, matrix: sp.spmatrix, **options) -> None:
        self._inner = inner
        self._matrix = matrix
        self._options = dict(options)
        self._direct: Optional[DirectOperator] = None
        #: Highest rung used so far: None, "factor", or "direct".
        self.escalation: Optional[str] = None
        #: The operator that produced the most recent solve.
        self._last_op: SolverOperator = inner

    # Delegated introspection: report from whichever operator actually
    # produced the last answer, so iteration counts and traces always
    # describe the solve the caller got.

    @property
    def inner(self) -> SolverOperator:
        """The currently-serving iterative operator (introspection)."""
        return self._inner

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def iterations(self) -> int:
        return self._last_op.iterations

    @property
    def total_iterations(self) -> int:
        return self._inner.total_iterations + (
            self._direct.total_iterations if self._direct is not None else 0
        )

    @property
    def preconditioner(self) -> Optional[Preconditioner]:
        return self._inner.preconditioner

    @property
    def reused_preconditioner(self) -> bool:
        return self._inner.reused_preconditioner

    @property
    def last_trace(self) -> Optional[ResidualTrace]:
        return self._last_op.last_trace

    def _stronger_cg(self) -> CGOperator:
        opts = dict(self._options)
        opts["precond_kind"] = "factor"
        opts.pop("preconditioner", None)
        return CGOperator(
            self._matrix,
            precond_kind="factor",
            rtol=opts.get("rtol"),
            maxiter=opts.get("maxiter"),
        )

    def _record(self, rung: str, cause: SolverError) -> None:
        self.escalation = rung
        _metrics.inc("resil.solver_escalations")
        _metrics.inc(f"resil.escalation.{rung}")
        _log.warning(
            "iterative solve failed (%s); escalated to %s",
            cause,
            rung,
            extra={
                "fields": {
                    "rung": rung,
                    "nodes": int(self._matrix.shape[0]),
                    "error": str(cause),
                }
            },
        )

    def solve(
        self, rhs: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> np.ndarray:
        if self.escalation == "direct" and self._direct is not None:
            # Sticky top rung: the iterative path already proved
            # untrustworthy for this system.
            self._last_op = self._direct
            return self._direct.solve(rhs)
        try:
            x = self._inner.solve(rhs, x0=x0)
            self._last_op = self._inner
            return x
        except SolverError as exc:
            first = exc
        with span(
            "resil.solver_escalation", nodes=int(self._matrix.shape[0])
        ) as sp_:
            precond = self._inner.preconditioner
            if precond is not None and precond.kind == "jacobi":
                try:
                    stronger = self._stronger_cg()
                    x = stronger.solve(rhs, x0=x0)
                except SolverError:
                    pass
                else:
                    self._inner = stronger
                    self._last_op = stronger
                    self._record("factor", first)
                    sp_.attrs["rung"] = "factor"
                    return x
            if self._direct is None:
                self._direct = DirectOperator(self._matrix.tocsc())
            x = self._direct.solve(rhs)
            self._last_op = self._direct
            self._record("direct", first)
            sp_.attrs["rung"] = "direct"
            return x

    def solve_block(
        self, block: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> np.ndarray:
        out = np.empty_like(block, order="F")
        for i in range(block.shape[1]):
            guess = None
            if x0 is not None:
                guess = x0 if x0.ndim == 1 else x0[:, i]
            out[:, i] = self.solve(block[:, i], x0=guess)
        return out


def amg_available() -> bool:
    """Whether the optional pyamg dependency is importable."""
    try:
        import pyamg  # noqa: F401
    except ImportError:
        return False
    return True


def make_operator(
    backend: str,
    matrix: sp.spmatrix,
    warm_from: Optional[SolverOperator] = None,
    **options,
) -> SolverOperator:
    """Build the operator for a resolved backend name.

    ``warm_from`` is a previous (spectrally nearby) operator whose
    preconditioner is reused when compatible -- the warm-start handoff.
    ``options`` pass through to the iterative constructors (``rtol``,
    ``maxiter``, ``precond_kind``).
    """
    global _amg_warned
    prev = warm_from.preconditioner if warm_from is not None else None
    if backend == "direct":
        return DirectOperator(matrix)
    if backend == "amg" and not amg_available():
        if not _amg_warned:
            _log.warning(
                "pyamg is not installed; amg backend falling back to cg"
            )
            _amg_warned = True
        _metrics.inc("solver.amg_fallbacks")
        backend = "cg"
        # An AMG hierarchy from a previous operator cannot serve the cg
        # fallback; compatible_with is shape-only, so drop it here.
        if prev is not None and prev.kind == "amg":
            prev = None  # pragma: no cover - needs pyamg to produce one
    if backend == "cg":
        if prev is not None and prev.kind not in PRECONDITIONERS:
            prev = None  # pragma: no cover - cross-backend handoff
        op: SolverOperator = CGOperator(matrix, preconditioner=prev, **options)
    elif backend == "amg":
        op = AMGOperator(  # pragma: no cover - exercised when pyamg exists
            matrix,
            preconditioner=prev,
            rtol=options.get("rtol"),
            maxiter=options.get("maxiter"),
        )
    else:
        raise ConfigurationError(
            f"unknown solver backend {backend!r}; known: {list(BACKENDS)}"
        )
    if escalation_enabled():
        # Library call sites get degrade-but-complete semantics; raw
        # operator construction keeps the historical raise.
        return EscalatingOperator(op, matrix, **options)  # type: ignore[return-value]
    return op


#: Convenience export for callers that enumerate operators per backend.
OPERATOR_TYPES: Dict[str, type] = {
    "direct": DirectOperator,
    "cg": CGOperator,
    "amg": AMGOperator,
}
