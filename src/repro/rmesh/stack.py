"""3D stack assembly: layers + vertical links -> one conductance network.

A :class:`StackModel` collects per-layer meshes (with a per-die placement
offset so dies of different sizes can be stacked), vertical links between
layers (vias, TSVs, F2F bond vias, B2B bonds, RDL attachments), and supply
links to the ideal package node.  It produces the sparse conductance
matrix that :class:`repro.rmesh.solve.StackSolver` factorizes.

The ideal supply is eliminated: with node drops ``u = VDD - v`` the system
is ``G u = J`` where supply links contribute only to the diagonal and
loads inject their current at their node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import MeshError
from repro.geometry import Point
from repro.rmesh.mesh import LayerMesh


@dataclass(frozen=True)
class VerticalLink:
    """A lumped conductance between one node of two different layers."""

    node_a: int  # global node id
    node_b: int
    conductance: float


@dataclass(frozen=True)
class SupplyLink:
    """A lumped conductance from a node to the ideal package supply."""

    node: int  # global node id
    conductance: float


@dataclass
class _LayerEntry:
    key: str
    die: str
    mesh: LayerMesh
    offset: int  # global id of this layer's node 0
    origin: Point  # placement of the layer's grid origin in stack coords


class StackModel:
    """A mutable builder for the global resistive network."""

    def __init__(self) -> None:
        self._layers: List[_LayerEntry] = []
        self._by_key: Dict[str, _LayerEntry] = {}
        self._links: List[VerticalLink] = []
        self._supply: List[SupplyLink] = []
        self._num_nodes = 0
        # Vectorized views of the (append-only) link lists, keyed by the
        # list length they were built at; see link_arrays().
        self._link_arrays_cache: "tuple[int, tuple] | None" = None
        self._supply_arrays_cache: "tuple[int, tuple] | None" = None
        # Layer key -> globally-offset (a, b, g) mesh edge arrays.  A
        # layer's mesh and offset are fixed at add_layer time, so these
        # never invalidate.  Read-only for callers.
        self._mesh_edges_cache: Dict[str, tuple] = {}

    # -- construction ---------------------------------------------------------

    def add_layer(
        self,
        die: str,
        mesh: LayerMesh,
        origin: Point = Point(0.0, 0.0),
        key: Optional[str] = None,
    ) -> str:
        """Register a layer mesh; returns its key (``"die/layer"``).

        ``origin`` places the layer's local (0, 0) in stack coordinates so
        that dies of different sizes can be aligned (e.g. a DRAM die
        centered over a larger logic die).
        """
        key = key or f"{die}/{mesh.name}"
        if key in self._by_key:
            raise MeshError(f"duplicate layer key {key!r}")
        entry = _LayerEntry(
            key=key, die=die, mesh=mesh, offset=self._num_nodes, origin=origin
        )
        self._layers.append(entry)
        self._by_key[key] = entry
        self._num_nodes += mesh.num_nodes
        return key

    def _entry(self, key: str) -> _LayerEntry:
        try:
            return self._by_key[key]
        except KeyError:
            raise MeshError(f"unknown layer {key!r}; have {list(self._by_key)}")

    def node_at(self, key: str, point: Point) -> int:
        """Global node id of the layer node nearest to a stack-coordinate
        point (snapped to the layer's grid)."""
        entry = self._entry(key)
        local = Point(point.x - entry.origin.x, point.y - entry.origin.y)
        i, j = entry.mesh.grid.nearest_node(local)
        return entry.offset + entry.mesh.grid.node_id(i, j)

    def _nodes_at_xy(self, key: str, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`node_at`: global ids for stack-coordinate arrays.

        Matches the scalar path exactly: truncation toward zero (like
        ``int()``) then clamping to the grid, so snapped ids are
        identical whichever path built them.
        """
        entry = self._entry(key)
        grid = entry.mesh.grid
        i = ((xs - entry.origin.x - grid.outline.x0) / grid.dx).astype(np.int64)
        j = ((ys - entry.origin.y - grid.outline.y0) / grid.dy).astype(np.int64)
        np.clip(i, 0, grid.nx - 1, out=i)
        np.clip(j, 0, grid.ny - 1, out=j)
        return entry.offset + j * grid.nx + i

    def connect_layers_at_points(
        self,
        key_a: str,
        key_b: str,
        points: Sequence[Point],
        conductances: "float | Sequence[float]",
    ) -> None:
        """Link two layers at given stack-coordinate points.

        ``conductances`` is either one value for all points or a per-point
        sequence (used when each TSV carries its own alignment detour
        resistance).  Links landing on the same node pair accumulate
        (parallel conductances add).
        """
        if isinstance(conductances, (int, float)):
            conductances = [float(conductances)] * len(points)
        xs = np.fromiter((p.x for p in points), dtype=float, count=len(points))
        ys = np.fromiter((p.y for p in points), dtype=float, count=len(points))
        self.connect_layers_at_xy(key_a, key_b, xs, ys, conductances)

    def connect_layers_at_xy(
        self,
        key_a: str,
        key_b: str,
        xs: "np.ndarray | Sequence[float]",
        ys: "np.ndarray | Sequence[float]",
        conductances: Sequence[float],
    ) -> None:
        """Coordinate-array form of :meth:`connect_layers_at_points`.

        Takes x/y arrays plus a per-point conductance sequence -- the
        shape a replayed :class:`~repro.pdn.plan.ConnectAtPointsOp`
        carries -- and produces the identical link list the point-based
        method would.
        """
        if len(conductances) != len(xs):
            raise MeshError(
                f"{len(xs)} points but {len(conductances)} conductances"
            )
        if not len(xs):
            return
        for g in conductances:
            if g <= 0.0:
                raise MeshError(f"link conductance must be positive, got {g}")
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        nodes_a = self._nodes_at_xy(key_a, xs, ys)
        nodes_b = self._nodes_at_xy(key_b, xs, ys)
        self._links.extend(
            VerticalLink(int(a), int(b), g)
            for a, b, g in zip(nodes_a, nodes_b, conductances)
        )

    def connect_layers_uniform(
        self, key_a: str, key_b: str, conductance_per_mm2: float
    ) -> None:
        """Link two layers at every node of the coarser layer, with an
        area-scaled conductance.

        Models distributed stitched vias inside a die and dense F2F bond
        vias between dies: the total coupling per unit area is resolution
        independent.  The link is placed at each node of the layer with
        fewer nodes, attaching to the nearest node of the other layer.
        """
        if conductance_per_mm2 <= 0.0:
            raise MeshError("area conductance must be positive")
        a, b = self._entry(key_a), self._entry(key_b)
        src, dst = (a, b) if a.mesh.num_nodes <= b.mesh.num_nodes else (b, a)
        grid = src.mesh.grid
        cell_area = grid.dx * grid.dy
        g = conductance_per_mm2 * cell_area
        # Vectorized over all source nodes, in flat-id (j-major) order so
        # the link list matches what the scalar loop produced.
        jj, ii = np.divmod(np.arange(grid.num_nodes), grid.nx)
        xs = grid.outline.x0 + (ii + 0.5) * grid.dx + src.origin.x
        ys = grid.outline.y0 + (jj + 0.5) * grid.dy + src.origin.y
        src_nodes = src.offset + np.arange(grid.num_nodes)
        dst_nodes = self._nodes_at_xy(dst.key, xs, ys)
        self._links.extend(
            VerticalLink(int(sa), int(sb), g)
            for sa, sb in zip(src_nodes, dst_nodes)
        )

    def connect_supply_at_points(
        self,
        key: str,
        points: Sequence[Point],
        conductances: "float | Sequence[float]",
    ) -> None:
        """Link layer nodes to the ideal supply (package) at given points."""
        if isinstance(conductances, (int, float)):
            conductances = [float(conductances)] * len(points)
        xs = np.fromiter((p.x for p in points), dtype=float, count=len(points))
        ys = np.fromiter((p.y for p in points), dtype=float, count=len(points))
        self.connect_supply_at_xy(key, xs, ys, conductances)

    def connect_supply_at_xy(
        self,
        key: str,
        xs: "np.ndarray | Sequence[float]",
        ys: "np.ndarray | Sequence[float]",
        conductances: Sequence[float],
    ) -> None:
        """Coordinate-array form of :meth:`connect_supply_at_points`."""
        if len(conductances) != len(xs):
            raise MeshError(
                f"{len(xs)} points but {len(conductances)} conductances"
            )
        if not len(xs):
            return
        for g in conductances:
            if g <= 0.0:
                raise MeshError(f"supply conductance must be positive, got {g}")
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        nodes = self._nodes_at_xy(key, xs, ys)
        self._supply.extend(
            SupplyLink(int(n), g) for n, g in zip(nodes, conductances)
        )

    # -- inspection -------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_resistors(self) -> int:
        """Total resistor count (mesh edges + links + supply links); the
        paper's Figure 4 credits the R-Mesh speedup to reducing this."""
        return (
            sum(e.mesh.num_resistors for e in self._layers)
            + len(self._links)
            + len(self._supply)
        )

    @property
    def layer_keys(self) -> List[str]:
        return [e.key for e in self._layers]

    def dies(self) -> List[str]:
        seen: List[str] = []
        for entry in self._layers:
            if entry.die not in seen:
                seen.append(entry.die)
        return seen

    def layer_slice(self, key: str) -> slice:
        """Global node-id range of a layer."""
        entry = self._entry(key)
        return slice(entry.offset, entry.offset + entry.mesh.num_nodes)

    def layer_grid(self, key: str):
        return self._entry(key).mesh.grid

    def layer_origin(self, key: str) -> Point:
        return self._entry(key).origin

    def die_layer_keys(self, die: str) -> List[str]:
        return [e.key for e in self._layers if e.die == die]

    def die_node_ids(self, die: str) -> np.ndarray:
        """All global node ids belonging to a die."""
        parts = [
            np.arange(e.offset, e.offset + e.mesh.num_nodes)
            for e in self._layers
            if e.die == die
        ]
        if not parts:
            raise MeshError(f"no layers registered for die {die!r}")
        return np.concatenate(parts)

    def has_supply(self) -> bool:
        return bool(self._supply)

    # -- link blocks (incremental-reassembly support) ---------------------------

    @property
    def link_count(self) -> int:
        """Number of vertical links added so far."""
        return len(self._links)

    @property
    def supply_count(self) -> int:
        """Number of supply links added so far."""
        return len(self._supply)

    def links_range(self, start: int, stop: int) -> "tuple[VerticalLink, ...]":
        """The vertical links added between two :attr:`link_count` marks."""
        return tuple(self._links[start:stop])

    def supply_range(self, start: int, stop: int) -> "tuple[SupplyLink, ...]":
        """The supply links added between two :attr:`supply_count` marks."""
        return tuple(self._supply[start:stop])

    def extend_links(self, links: Sequence[VerticalLink]) -> None:
        """Append pre-computed vertical links (cached replay blocks).

        Callers guarantee the links were computed against layers with the
        same offsets/grids/origins this model has -- the assembler keys
        its cache on exactly that.
        """
        self._links.extend(links)

    def extend_supply(self, links: Sequence[SupplyLink]) -> None:
        """Append pre-computed supply links (cached replay blocks)."""
        self._supply.extend(links)

    def vertical_links(self) -> List[VerticalLink]:
        """All vertical links (TSVs, F2F vias, bond wires, via stitching)."""
        return list(self._links)

    def supply_links(self) -> List[SupplyLink]:
        """All links to the ideal package supply."""
        return list(self._supply)

    def link_arrays(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Vectorized ``(node_a, node_b, conductance)`` over all vertical
        links.  The link lists are append-only, so the arrays are cached
        against the list length and rebuilt only after new links land.
        Callers must treat the returned arrays as read-only."""
        n = len(self._links)
        cached = self._link_arrays_cache
        if cached is None or cached[0] != n:
            a = np.fromiter(
                (lk.node_a for lk in self._links), dtype=np.int64, count=n
            )
            b = np.fromiter(
                (lk.node_b for lk in self._links), dtype=np.int64, count=n
            )
            g = np.fromiter(
                (lk.conductance for lk in self._links), dtype=float, count=n
            )
            cached = (n, (a, b, g))
            self._link_arrays_cache = cached
        return cached[1]

    def mesh_edge_arrays(self, key: str) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """One layer's mesh edges ``(a, b, g)`` in *global* node ids.

        Cached per layer (mesh topology and node offset are immutable
        once the layer is added).  Callers must treat the returned
        arrays as read-only.
        """
        cached = self._mesh_edges_cache.get(key)
        if cached is None:
            entry = self._entry(key)
            a, b, g = entry.mesh.edge_arrays()
            cached = (a + entry.offset, b + entry.offset, g)
            self._mesh_edges_cache[key] = cached
        return cached

    def supply_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized ``(node, conductance)`` over all supply links,
        cached like :meth:`link_arrays`.  Read-only."""
        n = len(self._supply)
        cached = self._supply_arrays_cache
        if cached is None or cached[0] != n:
            node = np.fromiter(
                (lk.node for lk in self._supply), dtype=np.int64, count=n
            )
            g = np.fromiter(
                (lk.conductance for lk in self._supply), dtype=float, count=n
            )
            cached = (n, (node, g))
            self._supply_arrays_cache = cached
        return cached[1]

    def layer_entry(self, key: str):
        """The internal layer record (mesh + offset + origin) for a key."""
        return self._entry(key)

    # -- matrix assembly ----------------------------------------------------------

    def conductance_matrix(self) -> sp.csr_matrix:
        """Assemble the reduced (supply-eliminated) conductance matrix."""
        if self._num_nodes == 0:
            raise MeshError("empty stack: no layers added")
        if not self._supply:
            raise MeshError(
                "no supply connection: the network is floating and the "
                "solve would be singular"
            )
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        vals: List[np.ndarray] = []

        def stamp(a: np.ndarray, b: np.ndarray, g: np.ndarray) -> None:
            rows.extend((a, b, a, b))
            cols.extend((a, b, b, a))
            vals.extend((g, g, -g, -g))

        for entry in self._layers:
            a, b, g = self.mesh_edge_arrays(entry.key)
            stamp(a, b, g)
        if self._links:
            a, b, g = self.link_arrays()
            stamp(a, b, g)
        # Supply links only add to the diagonal (the supply node, at drop 0,
        # is eliminated).
        s, gs = self.supply_arrays()
        rows.append(s)
        cols.append(s)
        vals.append(gs)

        matrix = sp.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(self._num_nodes, self._num_nodes),
        )
        return matrix.tocsr()
