"""Transient (RC) power-integrity extension.

The paper analyzes DC IR drop and notes that decoupling capacitance is
the lever for *AC* integrity (section 4.1: bond wires "can directly
connect to large off-chip decoupling capacitors, which provide better AC
power integrity"; its reference [5] adds local decaps per sub-bank).
This module extends the R-Mesh into the time domain so those claims can
be exercised:

* on-die decoupling capacitance is distributed over each DRAM die's
  device layer, plus a bulk package capacitor behind the supply plane;
* the network becomes G v + C dv/dt = i(t), integrated with backward
  Euler: ``(G + C/dt) v_{k+1} = i_{k+1} + (C/dt) v_k``.  The augmented
  matrix is factorized once; each time step is a back-substitution, the
  same trick the DC LUT uses;
* stimuli are piecewise-constant memory-state schedules (e.g. a bank
  activation burst), built from :class:`repro.power.MemoryState` or from
  a memory-controller activity trace.

Inductance is not modelled (no package RLC resonance), so results show
RC settling and decap droop suppression, not mid-frequency ringing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ConfigurationError, SolverError
from repro.pdn.stackup import PDNStack
from repro.power.state import MemoryState
from repro.units import to_mv


@dataclass(frozen=True)
class DecapConfig:
    """Decoupling capacitance placement.

    ``die_nf_per_mm2``: on-die decap density spread over every DRAM die's
    device (M1) layer.  ``package_uf``: bulk capacitor at the package
    plane (what the paper's backside bond wires tie the stack to).
    """

    die_nf_per_mm2: float = 0.15
    package_uf: float = 1.0

    def __post_init__(self) -> None:
        if self.die_nf_per_mm2 < 0.0 or self.package_uf < 0.0:
            raise ConfigurationError("capacitances must be >= 0")


@dataclass
class TransientResult:
    """Per-step worst-DRAM drops of a transient run."""

    times_ns: np.ndarray
    dram_max_mv: np.ndarray
    per_die_mv: Dict[str, np.ndarray]
    dt_ns: float
    solve_time_s: float

    @property
    def peak_mv(self) -> float:
        """Worst instantaneous DRAM droop over the whole run."""
        return float(self.dram_max_mv.max())

    @property
    def final_mv(self) -> float:
        """Droop at the last time step (≈ DC when settled)."""
        return float(self.dram_max_mv[-1])

    def settling_time_ns(self, tolerance: float = 0.05) -> float:
        """Time after which the droop stays within ``tolerance`` of the
        final value (rough RC settling metric)."""
        target = self.final_mv
        band = abs(target) * tolerance + 1e-9
        outside = np.abs(self.dram_max_mv - target) > band
        if not outside.any():
            return 0.0
        last_outside = int(np.nonzero(outside)[0][-1])
        if last_outside + 1 >= len(self.times_ns):
            return float(self.times_ns[-1])
        return float(self.times_ns[last_outside + 1])


class TransientSolver:
    """Backward-Euler RC simulation on a built stack."""

    def __init__(
        self,
        stack: PDNStack,
        decap: DecapConfig = DecapConfig(),
        dt_ns: float = 0.5,
    ) -> None:
        if dt_ns <= 0.0:
            raise ConfigurationError("time step must be positive")
        self.stack = stack
        self.decap = decap
        self.dt_ns = dt_ns
        dt_s = dt_ns * 1e-9

        n = stack.model.num_nodes
        cap = np.zeros(n)  # farads per node
        # On-die decap over every DRAM device layer.
        for die in range(stack.spec.num_dram_dies):
            key = stack.load_layer_key(die)
            sl = stack.model.layer_slice(key)
            grid = stack.model.layer_grid(key)
            cell_nf = decap.die_nf_per_mm2 * grid.dx * grid.dy
            cap[sl] += cell_nf * 1e-9
        # Bulk package capacitor at the plane node.
        try:
            plane = stack.model.layer_slice("package/plane")
            cap[plane.start] += decap.package_uf * 1e-6
        except Exception:  # pragma: no cover - single-die stacks lack it
            pass
        self.cap = cap

        g = stack.model.conductance_matrix().tocsc()
        c_over_dt = sp.diags(cap / dt_s).tocsc()
        t0 = time.perf_counter()
        try:
            self._lu = spla.splu((g + c_over_dt).tocsc())
        except RuntimeError as exc:  # pragma: no cover
            raise SolverError(f"transient factorization failed: {exc}") from exc
        self.factor_time = time.perf_counter() - t0
        self._c_over_dt = cap / dt_s

    # -- stimulus construction --------------------------------------------------

    def schedule_currents(
        self, schedule: Sequence[Tuple[MemoryState, float]]
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Expand a [(state, duration_ns), ...] schedule into per-step
        current vectors.  Durations are rounded to whole time steps (at
        least one step each)."""
        if not schedule:
            raise ConfigurationError("empty transient schedule")
        currents_by_state: Dict[str, np.ndarray] = {}
        steps: List[np.ndarray] = []
        times: List[float] = []
        t = 0.0
        for state, duration_ns in schedule:
            if duration_ns <= 0.0:
                raise ConfigurationError("schedule durations must be positive")
            key = state.label() + repr(state.active)
            if key not in currents_by_state:
                vec = np.zeros(self.stack.model.num_nodes)
                for lk, pmap in self.stack.power_maps(state).items():
                    vec[self.stack.model.layer_slice(lk)] += pmap.flat()
                currents_by_state[key] = vec
            n_steps = max(1, int(round(duration_ns / self.dt_ns)))
            for _ in range(n_steps):
                t += self.dt_ns
                times.append(t)
                steps.append(currents_by_state[key])
        return np.array(times), steps

    # -- integration ---------------------------------------------------------------

    def simulate(
        self,
        schedule: Sequence[Tuple[MemoryState, float]],
        v0: Optional[np.ndarray] = None,
    ) -> TransientResult:
        """Integrate the RC network over a memory-state schedule.

        ``v0`` is the initial drop vector (defaults to all-zero: a fully
        charged, quiescent network).
        """
        times, steps = self.schedule_currents(schedule)
        n = self.stack.model.num_nodes
        v = np.zeros(n) if v0 is None else v0.astype(float).copy()
        if v.shape != (n,):
            raise SolverError(f"v0 has shape {v.shape}, expected ({n},)")

        die_ids = {
            name: self.stack.model.die_node_ids(name)
            for name in self.stack.dram_die_names
        }
        dram_max = np.empty(len(steps))
        per_die = {name: np.empty(len(steps)) for name in die_ids}

        t0 = time.perf_counter()
        for k, i_vec in enumerate(steps):
            rhs = i_vec + self._c_over_dt * v
            v = self._lu.solve(rhs)
            for name, ids in die_ids.items():
                per_die[name][k] = to_mv(float(v[ids].max()))
            dram_max[k] = max(per_die[name][k] for name in die_ids)
        elapsed = time.perf_counter() - t0

        return TransientResult(
            times_ns=times,
            dram_max_mv=dram_max,
            per_die_mv=per_die,
            dt_ns=self.dt_ns,
            solve_time_s=elapsed,
        )

    def step_response(
        self, state: MemoryState, duration_ns: float = 200.0
    ) -> TransientResult:
        """Convenience: quiescent network hit by a sustained memory state."""
        return self.simulate([(state, duration_ns)])
