"""Synthetic large-mesh PDN workloads for solver stress testing.

The paper's four benchmark stacks top out around 6.5k nodes at the
production mesh pitch -- comfortable for a direct factorization, but not
representative of the reference-resolution discretization
(:mod:`repro.rmesh.reference`) or of the SRAM-PG-style PDN benchmark
grids (arXiv:2404.05260) that iterative solvers are meant to unlock.
This module generates stacks of *arbitrary* node count with the same
ingredients as a planned stack -- uniform metal meshes, distributed via
coupling between layers, a regular supply bump array, and hotspot-laden
current loads -- so ``bench_solver_scaling`` can gate backend behaviour
at 4x and beyond the largest direct-solved benchmark.

Workloads are deterministic: currents come from a seeded
``numpy.random.Generator``, and the mesh is a pure function of its
parameters, so max-IR values are reproducible across runs and machines
(the usual golden-value discipline of this repo).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry import Grid2D, Rect
from repro.rmesh.mesh import LayerMesh
from repro.rmesh.stack import StackModel

#: Edge conductance of the synthetic metal meshes, siemens.  The order
#: of magnitude of a DRAM global power layer at the paper's pitch.
EDGE_CONDUCTANCE = 2.0

#: Distributed via coupling between adjacent layers, S/mm^2.
VIA_DENSITY = 50.0

#: Conductance of one supply bump (C4-ish), siemens.
BUMP_CONDUCTANCE = 1.0 / 0.09

#: Physical pitch of the synthetic grid, mm (sets the die size).
NODE_PITCH = 0.1


@dataclass
class SyntheticWorkload:
    """A stress stack plus one deterministic load vector.

    ``currents`` loads the *top* layer only (the layer farthest from the
    supply bumps), the worst case for vertical IR drop.
    """

    model: StackModel
    currents: np.ndarray
    nx: int
    ny: int
    layers: int
    seed: int

    @property
    def num_nodes(self) -> int:
        return self.model.num_nodes

    @property
    def load_key(self) -> str:
        return f"stress/M{self.layers}"


def synthetic_workload(
    nx: int,
    ny: int,
    layers: int = 3,
    bump_every: int = 8,
    hotspots: int = 6,
    total_current: float = 0.7,
    seed: int = 2015,
) -> SyntheticWorkload:
    """Build an ``nx x ny x layers`` stress stack with hotspot loads.

    ``bump_every`` spaces the supply bump array (one bump per
    ``bump_every`` nodes in each direction on the bottom layer); denser
    bumps condition the system better, exactly as more C4s flatten a
    real PDN.  ``total_current`` (amps) is split 30% uniform background,
    70% across ``hotspots`` Gaussian blobs placed by the seeded RNG.
    """
    if nx < 2 or ny < 2 or layers < 1:
        raise ValueError("workload needs nx, ny >= 2 and layers >= 1")
    outline = Rect(0.0, 0.0, nx * NODE_PITCH, ny * NODE_PITCH)
    grid = Grid2D(outline, nx, ny)
    model = StackModel()
    keys = []
    for layer in range(layers):
        mesh = LayerMesh(
            grid=grid,
            gx=np.full((ny, nx - 1), EDGE_CONDUCTANCE),
            gy=np.full((ny - 1, nx), EDGE_CONDUCTANCE),
            name=f"M{layer + 1}",
        )
        keys.append(model.add_layer("stress", mesh, key=f"stress/M{layer + 1}"))
    for below, above in zip(keys, keys[1:]):
        model.connect_layers_uniform(below, above, VIA_DENSITY)

    # Regular supply bump array on the bottom layer.
    bumps = [
        grid.node_point(i, j)
        for i in range(bump_every // 2, nx, bump_every)
        for j in range(bump_every // 2, ny, bump_every)
    ]
    model.connect_supply_at_points(keys[0], bumps, BUMP_CONDUCTANCE)

    # Deterministic loads on the top layer: uniform background plus
    # Gaussian hotspots (bank-activity stand-ins).
    rng = np.random.default_rng(seed)
    density = np.full((ny, nx), 0.3 * total_current / (nx * ny))
    xs, ys = np.meshgrid(np.arange(nx), np.arange(ny))
    sigma = max(min(nx, ny) / 16.0, 1.0)
    blob_total = 0.7 * total_current / max(hotspots, 1)
    for _ in range(hotspots):
        cx = rng.uniform(0.1 * nx, 0.9 * nx)
        cy = rng.uniform(0.1 * ny, 0.9 * ny)
        blob = np.exp(-((xs - cx) ** 2 + (ys - cy) ** 2) / (2.0 * sigma**2))
        density += blob_total * blob / blob.sum()

    currents = np.zeros(model.num_nodes)
    currents[model.layer_slice(keys[-1])] = density.ravel()
    return SyntheticWorkload(
        model=model,
        currents=currents,
        nx=nx,
        ny=ny,
        layers=layers,
        seed=seed,
    )


def workload_for_nodes(
    min_nodes: int,
    layers: int = 3,
    aspect: float = 1.0,
    **kwargs,
) -> SyntheticWorkload:
    """The smallest square-ish workload with at least ``min_nodes`` nodes.

    ``aspect`` stretches x over y (``nx ~ aspect * ny``).  This is the
    entry point scaling benchmarks use: ask for ``4 * biggest_stack``
    and get a mesh guaranteed to clear the bar.
    """
    if min_nodes < 4 * layers:
        raise ValueError(f"min_nodes too small: {min_nodes}")
    per_layer = min_nodes / layers
    ny = max(int(math.ceil(math.sqrt(per_layer / aspect))), 2)
    nx = max(int(math.ceil(per_layer / ny)), 2)
    return synthetic_workload(nx, ny, layers=layers, **kwargs)
