"""R-Mesh: resistive-mesh IR-drop engine.

This is the stand-in for the paper's HSPICE flow (section 2.2): a
resistive mesh is built for each metal layer from design and technology
information, stacked into a 3D conductance network with vias, TSVs, bond
vias and package elements, and solved for the DC operating point.  Because
the network is purely resistive with DC current loads, the SPICE solution
is exactly the sparse linear solve performed here.

``reference`` provides the fine-discretization golden solver that plays
the role of Cadence EPS in the paper's Figure 4 validation.
"""

from repro.rmesh.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    SOLVER_ENV,
    amg_available,
    make_operator,
    resolve_backend,
)
from repro.rmesh.branches import BranchGroup, StackBranches, extract_branches
from repro.rmesh.mesh import LayerMesh
from repro.rmesh.stack import StackModel, VerticalLink, SupplyLink
from repro.rmesh.solve import IRDropResult, StackSolver

__all__ = [
    "BranchGroup",
    "StackBranches",
    "extract_branches",
    "LayerMesh",
    "StackModel",
    "VerticalLink",
    "SupplyLink",
    "IRDropResult",
    "StackSolver",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "SOLVER_ENV",
    "amg_available",
    "make_operator",
    "resolve_backend",
]
