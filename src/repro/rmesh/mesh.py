"""Per-layer resistive meshes.

One metal layer of one die becomes a 2D grid of nodes connected by edge
conductances.  The conductance of the x-directed edge between nodes
(i, j) and (i+1, j) follows from the effective sheet resistance of the
PDN on that layer::

    g_x = (1 / rho_eff) * (dy / dx) * w_x

where ``w_x`` is the direction weight (a vertically-routed layer carries
little x current) and ``rho_eff = rho_sheet / usage`` accounts for the
fraction of the layer used by VDD straps (paper section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.errors import MeshError
from repro.geometry import Grid2D
from repro.tech.metals import MetalLayer


@dataclass
class LayerMesh:
    """A resistive mesh for one metal layer.

    ``gx`` has shape (ny, nx-1): conductance of the edge from (i, j) to
    (i+1, j).  ``gy`` has shape (ny-1, nx): edge from (i, j) to (i, j+1).
    Conductances may vary per edge (PG rings thicken the boundary).
    """

    grid: Grid2D
    gx: np.ndarray
    gy: np.ndarray
    name: str = "layer"

    def __post_init__(self) -> None:
        if self.gx.shape != (self.grid.ny, self.grid.nx - 1):
            raise MeshError(
                f"{self.name}: gx shape {self.gx.shape} != "
                f"({self.grid.ny}, {self.grid.nx - 1})"
            )
        if self.gy.shape != (self.grid.ny - 1, self.grid.nx):
            raise MeshError(
                f"{self.name}: gy shape {self.gy.shape} != "
                f"({self.grid.ny - 1}, {self.grid.nx})"
            )
        if np.any(self.gx < 0.0) or np.any(self.gy < 0.0):
            raise MeshError(f"{self.name}: negative edge conductance")

    @classmethod
    def from_layer(
        cls,
        grid: Grid2D,
        layer: MetalLayer,
        usage: float,
        name: str = "",
    ) -> "LayerMesh":
        """Build a uniform mesh for ``layer`` at PDN usage ``usage``."""
        rho_eff = layer.effective_sheet_res(usage)
        wx, wy = layer.direction.direction_weights()
        gx_val = (1.0 / rho_eff) * (grid.dy / grid.dx) * wx
        gy_val = (1.0 / rho_eff) * (grid.dx / grid.dy) * wy
        return cls(
            grid=grid,
            gx=np.full((grid.ny, grid.nx - 1), gx_val),
            gy=np.full((grid.ny - 1, grid.nx), gy_val),
            name=name or layer.name,
        )

    @property
    def num_nodes(self) -> int:
        return self.grid.num_nodes

    @property
    def num_resistors(self) -> int:
        """Number of resistive edges in this layer (Figure 4 reports the
        reduced resistor count as the source of the R-Mesh speedup)."""
        return self.gx.size + self.gy.size

    def add_pg_ring(self, boost: float, rings: int = 1) -> None:
        """Strengthen the outermost ``rings`` node rows/columns by ``boost``.

        Models the PG ring the PDN generator draws around each die
        (section 2.2: "PG rings, vias, and inter-die connections are
        generated automatically").
        """
        if boost < 1.0:
            raise MeshError(f"PG ring boost must be >= 1, got {boost}")
        for r in range(rings):
            # x-directed edges along the bottom and top boundary rows.
            self.gx[r, :] *= boost
            self.gx[-1 - r, :] *= boost
            # y-directed edges along the left and right boundary columns.
            self.gy[:, r] *= boost
            self.gy[:, -1 - r] *= boost

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield (node_a, node_b, conductance) for every mesh edge.

        Node ids are layer-local flat grid ids; :class:`StackModel` adds
        per-layer offsets when assembling the global matrix.
        """
        nx = self.grid.nx
        for j in range(self.grid.ny):
            for i in range(nx - 1):
                g = self.gx[j, i]
                if g > 0.0:
                    yield j * nx + i, j * nx + i + 1, g
        for j in range(self.grid.ny - 1):
            for i in range(nx):
                g = self.gy[j, i]
                if g > 0.0:
                    yield j * nx + i, (j + 1) * nx + i, g

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized form of :meth:`iter_edges`: (a, b, g) arrays.

        Used by the assembler; building via numpy keeps stack assembly
        fast on fine reference grids.
        """
        nx, ny = self.grid.nx, self.grid.ny
        node = np.arange(nx * ny).reshape(ny, nx)
        ax = node[:, :-1].reshape(-1)
        bx = node[:, 1:].reshape(-1)
        gx = self.gx.reshape(-1)
        ay = node[:-1, :].reshape(-1)
        by = node[1:, :].reshape(-1)
        gy = self.gy.reshape(-1)
        return (
            np.concatenate([ax, ay]),
            np.concatenate([bx, by]),
            np.concatenate([gx, gy]),
        )
