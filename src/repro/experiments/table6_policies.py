"""Table 6: impact of the architectural (read scheduling) policy.

====================  ========  ===============  ===============
Policy                Standard  IR-aware FCFS    IR-aware DistR
====================  ========  ===============  ===============
Runtime (us)          109.3     84.68 (-22.6%)   75.85 (-30.6%)
Bandwidth (read/clk)  0.114     0.148 (+29.2%)   0.165 (+44.2%)
Max IR drop (mV)      30.03     23.98 (-20.2%)   23.98 (-20.2%)
====================  ========  ===============  ===============
"""

from __future__ import annotations

from repro.controller import (
    IRAwareDistR,
    IRAwareFCFS,
    IRDropLUT,
    SimConfig,
    StandardJEDEC,
    generate_workload,
)
from repro.controller.engine import EventDrivenEngine
from repro.designs import off_chip_ddr3
from repro.dram.timing import TimingParams
from repro.experiments.base import ExperimentResult, Row, register
from repro.perf.cache import cached_build_stack

PAPER = {
    "standard": (109.3, 0.114, 30.03),
    "ir_fcfs": (84.68, 0.148, 23.98),
    "ir_distr": (75.85, 0.165, 23.98),
}

CONSTRAINT_MV = 24.0


@register("table6")
def run(fast: bool = True) -> ExperimentResult:
    """Run the three scheduling policies (Table 6)."""
    bench = off_chip_ddr3()
    stack = cached_build_stack(bench.stack, bench.baseline)
    lut = IRDropLUT(stack)
    timing = TimingParams.ddr3_1600()
    cfg = SimConfig(timing=timing)
    policies = (
        StandardJEDEC(timing),
        IRAwareFCFS(lut, CONSTRAINT_MV),
        IRAwareDistR(lut, CONSTRAINT_MV),
    )
    rows = []
    std_runtime = None
    for policy in policies:
        res = EventDrivenEngine(
            cfg, policy, generate_workload(), report_lut=lut
        ).run()
        p_rt, p_bw, p_ir = PAPER[policy.name]
        model = {
            "runtime_us": res.runtime_us,
            "bandwidth": res.bandwidth_reads_per_clk,
            "max_ir_mv": res.max_ir_mv,
        }
        if policy.name == "standard":
            std_runtime = res.runtime_us
        else:
            model["runtime_delta_pct"] = 100.0 * (res.runtime_us - std_runtime) / std_runtime
        rows.append(
            Row(
                label=policy.name,
                paper={"runtime_us": p_rt, "bandwidth": p_bw, "max_ir_mv": p_ir},
                model=model,
            )
        )
    return ExperimentResult(
        experiment_id="table6",
        title="Read scheduling policy comparison (Table 6)",
        rows=rows,
        notes=[
            f"10,000 reads, queue 32, IR constraint {CONSTRAINT_MV} mV on the "
            "F2B off-chip baseline",
            "known deviation: our DistR reaches the workload's arrival "
            "bandwidth cap (0.200 reads/clk), over-delivering vs the "
            "paper's 0.165",
        ],
    )
