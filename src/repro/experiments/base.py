"""Experiment framework: results, rows, registry, run provenance.

Every :func:`run_experiment` call executes inside a trace span and
captures the metric delta it produced; the pair feeds a
:class:`repro.obs.manifest.RunManifest` attached to the result (and
optionally written to disk), so each experiment ships its own receipt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.obs.manifest import RunManifest


@dataclass
class Row:
    """One table row: a label, the paper's value(s), the model's value(s).

    Values are kept as raw floats (or strings for categorical cells) so
    benches can assert on them; ``fmt`` renders aligned text.
    """

    label: str
    paper: Dict[str, object] = field(default_factory=dict)
    model: Dict[str, object] = field(default_factory=dict)

    def deviation_percent(self, key: str) -> Optional[float]:
        """Relative deviation of the model from the paper for one metric.

        Returns None when either value is non-numeric (bools are
        rejected: ``True`` is an ``int`` but "deviation from True" is
        meaningless) and when the paper value is exactly 0 -- relative
        deviation has no defined denominator there, so a zero anchor is
        reported without a percentage rather than silently skipped as
        falsy input.
        """
        p = self.paper.get(key)
        m = self.model.get(key)
        if isinstance(p, bool) or isinstance(m, bool):
            return None
        if not isinstance(p, (int, float)) or not isinstance(m, (int, float)):
            return None
        if p == 0:
            return None  # zero denominator: relative deviation undefined
        return (m - p) / p * 100.0


@dataclass
class ExperimentResult:
    """Output of one experiment driver."""

    experiment_id: str
    title: str
    rows: List[Row]
    notes: List[str] = field(default_factory=list)
    #: Provenance record attached by :func:`run_experiment`; ``None`` when
    #: a driver is invoked directly (tests calling ``registry[id]()``).
    manifest: Optional["RunManifest"] = field(
        default=None, repr=False, compare=False
    )

    def fmt(self) -> str:
        """Render as an aligned text table (paper | model | deviation)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        metric_keys: List[str] = []
        for row in self.rows:
            for key in list(row.paper) + list(row.model):
                if key not in metric_keys:
                    metric_keys.append(key)
        width = max((len(r.label) for r in self.rows), default=10) + 2
        for row in self.rows:
            cells = []
            for key in metric_keys:
                p, m = row.paper.get(key), row.model.get(key)
                if p is None and m is None:
                    continue
                text = f"{key}: "
                text += _fmt_value(p) if p is not None else "--"
                if m is not None:
                    text += f" -> {_fmt_value(m)}"
                    dev = row.deviation_percent(key)
                    if dev is not None:
                        text += f" ({dev:+.1f}%)"
                cells.append(text)
            lines.append(f"  {row.label:<{width}} " + " | ".join(cells))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def row(self, label: str) -> Row:
        """Look a row up by label."""
        for row in self.rows:
            if row.label == label:
                return row
        raise ConfigurationError(
            f"{self.experiment_id}: no row labelled {label!r}"
        )


def _fmt_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


#: experiment id -> run callable.
registry: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator registering a driver's run() under an experiment id."""

    def deco(func: Callable[..., ExperimentResult]):
        if experiment_id in registry:
            raise ConfigurationError(f"duplicate experiment id {experiment_id}")
        registry[experiment_id] = func
        return func

    return deco


def run_experiment(
    experiment_id: str,
    fast: bool = True,
    manifest_out=None,
) -> ExperimentResult:
    """Run one experiment by id.

    The run executes inside an ``experiment.<id>`` trace span; the
    metric delta it produced (solve counts, cache hits, IR summaries --
    including work merged back from worker processes) lands in a
    :class:`~repro.obs.manifest.RunManifest` attached to the result.
    ``manifest_out`` additionally writes the manifest to that path.
    """
    if experiment_id not in registry:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(registry)}"
        )
    # Local imports keep ``repro.experiments`` importable without pulling
    # the observability stack into every driver module's import chain.
    from repro.obs import metrics as _metrics
    from repro.obs.manifest import build_manifest
    from repro.obs.trace import span
    from repro.resil.checkpoint import active_checkpoint_info
    from repro.rmesh import backends as _backends

    before = _metrics.snapshot()
    traces_before = _backends.trace_count()
    with span(f"experiment.{experiment_id}", fast=fast) as sp:
        result = registry[experiment_id](fast=fast)
    # Resume lineage: when a checkpoint is active, the manifest records
    # where it journals and how many points it served vs. solved -- the
    # receipt that distinguishes a resumed run from a fresh one.
    resume_info = active_checkpoint_info()
    result.manifest = build_manifest(
        experiment_id=experiment_id,
        title=result.title,
        config={"experiment": experiment_id, "fast": fast},
        duration_s=sp.duration,
        metrics_snapshot=_metrics.diff(before, _metrics.snapshot()),
        convergence=_backends.export_traces(since=traces_before),
        extra={"resume": resume_info} if resume_info else None,
    )
    if manifest_out is not None:
        result.manifest.write(manifest_out)
    return result
