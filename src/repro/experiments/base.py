"""Experiment framework: results, rows, registry."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError


@dataclass
class Row:
    """One table row: a label, the paper's value(s), the model's value(s).

    Values are kept as raw floats (or strings for categorical cells) so
    benches can assert on them; ``fmt`` renders aligned text.
    """

    label: str
    paper: Dict[str, object] = field(default_factory=dict)
    model: Dict[str, object] = field(default_factory=dict)

    def deviation_percent(self, key: str) -> Optional[float]:
        """Relative deviation of the model from the paper for one metric."""
        p = self.paper.get(key)
        m = self.model.get(key)
        if isinstance(p, (int, float)) and isinstance(m, (int, float)) and p:
            return (m - p) / p * 100.0
        return None


@dataclass
class ExperimentResult:
    """Output of one experiment driver."""

    experiment_id: str
    title: str
    rows: List[Row]
    notes: List[str] = field(default_factory=list)

    def fmt(self) -> str:
        """Render as an aligned text table (paper | model | deviation)."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        metric_keys: List[str] = []
        for row in self.rows:
            for key in list(row.paper) + list(row.model):
                if key not in metric_keys:
                    metric_keys.append(key)
        width = max((len(r.label) for r in self.rows), default=10) + 2
        for row in self.rows:
            cells = []
            for key in metric_keys:
                p, m = row.paper.get(key), row.model.get(key)
                if p is None and m is None:
                    continue
                text = f"{key}: "
                text += _fmt_value(p) if p is not None else "--"
                if m is not None:
                    text += f" -> {_fmt_value(m)}"
                    dev = row.deviation_percent(key)
                    if dev is not None:
                        text += f" ({dev:+.1f}%)"
                cells.append(text)
            lines.append(f"  {row.label:<{width}} " + " | ".join(cells))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def row(self, label: str) -> Row:
        """Look a row up by label."""
        for row in self.rows:
            if row.label == label:
                return row
        raise ConfigurationError(
            f"{self.experiment_id}: no row labelled {label!r}"
        )


def _fmt_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


#: experiment id -> run callable.
registry: Dict[str, Callable[..., ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator registering a driver's run() under an experiment id."""

    def deco(func: Callable[..., ExperimentResult]):
        if experiment_id in registry:
            raise ConfigurationError(f"duplicate experiment id {experiment_id}")
        registry[experiment_id] = func
        return func

    return deco


def run_experiment(experiment_id: str, fast: bool = True) -> ExperimentResult:
    """Run one experiment by id."""
    if experiment_id not in registry:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(registry)}"
        )
    return registry[experiment_id](fast=fast)
