"""Table 8: the cost model itself, checked at its range endpoints."""

from __future__ import annotations

from repro.cost import m2_cost, m3_cost, tsv_count_cost, tsv_location_cost
from repro.cost.model import (
    BONDING_COST,
    DEDICATED_TSV_COST,
    RDL_COST,
    WIRE_BOND_COST,
)
from repro.experiments.base import ExperimentResult, Row, register
from repro.pdn.config import Bonding, TSVLocation


@register("table8")
def run(fast: bool = True) -> ExperimentResult:
    """Check the cost model terms (Table 8)."""
    rows = [
        Row(
            label="M2 usage 10% / 20%",
            paper={"low": 0.025, "high": 0.05},
            model={"low": m2_cost(0.10), "high": m2_cost(0.20)},
        ),
        Row(
            label="M3 usage 10% / 40%",
            paper={"low": 0.025, "high": 0.10},
            model={"low": m3_cost(0.10), "high": m3_cost(0.40)},
        ),
        Row(
            label="TSV count 15 / 480 (sqrt law)",
            paper={"low": 0.078, "high": 0.44},
            model={"low": tsv_count_cost(15), "high": tsv_count_cost(480)},
        ),
        Row(
            label="dedicated TSV",
            paper={"cost": 0.06},
            model={"cost": DEDICATED_TSV_COST},
        ),
        Row(
            label="bonding F2B / F2F",
            paper={"low": 0.045, "high": 0.06},
            model={"low": BONDING_COST[Bonding.F2B], "high": BONDING_COST[Bonding.F2F]},
        ),
        Row(label="RDL", paper={"cost": 0.05}, model={"cost": RDL_COST}),
        Row(label="wire bonding", paper={"cost": 0.03}, model={"cost": WIRE_BOND_COST}),
        Row(
            label="TSV location C/E/D at TC=100",
            paper={"C": 0.0, "E": 0.5 * tsv_count_cost(100), "D": tsv_count_cost(100)},
            model={
                "C": tsv_location_cost(TSVLocation.CENTER, 100),
                "E": tsv_location_cost(TSVLocation.EDGE, 100),
                "D": tsv_location_cost(TSVLocation.DISTRIBUTED, 100),
            },
        ),
    ]
    return ExperimentResult(
        experiment_id="table8",
        title="Cost model terms (Table 8)",
        rows=rows,
        notes=["off-chip stacked DDR3 additionally pays a 0.057 package adder"],
    )
