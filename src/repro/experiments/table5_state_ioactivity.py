"""Table 5: impact of memory state and I/O activity (off-chip DDR3).

=========  ===========  ===========  ========  ======  ========
State      IO act/die   Active (mW)  Tot (mW)  F2B mV  F2F mV
=========  ===========  ===========  ========  ======  ========
0-0-0-2    100%         220.5        310.5     30.03   17.18
2-0-0-0    100%         229.3        310.5     26.26   14.61
0-0-0-2    50%          175.5        256.5     26.42   15.15
0-0-2-2    50%          175.5        405.0     28.14   27.21
0-0-0-2    25%          126.0        207.9     22.93   13.23
2-2-2-2    25%          126.9        507.6     24.82   23.57
=========  ===========  ===========  ========  ======  ========

The three 0-0-0-2 rows at reduced activity model the same state when the
bus interleaves across more dies; here the activity is forced explicitly
through extra active dies (the physical mechanism), so those rows map to
their balanced multi-die equivalents.
"""

from __future__ import annotations

from repro.designs import off_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.experiments.common import ddr3_state
from repro.pdn.config import Bonding
from repro.perf.cache import cached_build_stack
from repro.power.model import DDR3_POWER, die_power_mw, stack_power_mw

PAPER = [
    ("0-0-0-2", 1.00, 220.5, 310.5, 30.03, 17.18),
    ("2-0-0-0", 1.00, 229.3, 310.5, 26.26, 14.61),
    ("0-0-2-2", 0.50, 175.5, 405.0, 28.14, 27.21),
    ("2-2-2-2", 0.25, 126.9, 507.6, 24.82, 23.57),
]


@register("table5")
def run(fast: bool = True) -> ExperimentResult:
    """Evaluate memory state / IO activity (Table 5).

    Each bonding style builds (and factorizes) its stack once and solves
    all of the table's memory states as a single batched multi-RHS
    back-substitution (``PDNStack.solve_states``); the seed rebuilt a
    stack per table cell.
    """
    bench = off_chip_ddr3()
    fp = bench.stack.dram_floorplan
    states = [ddr3_state(label) for label, *_ in PAPER]
    results = {}
    for name, config in (
        ("f2b", bench.baseline),
        ("f2f", bench.baseline.with_options(bonding=Bonding.F2F)),
    ):
        stack = cached_build_stack(bench.stack, config)
        results[name] = stack.solve_states(states)
    rows = []
    for i, (label, act, p_active, p_total, p_f2b, p_f2f) in enumerate(PAPER):
        state = states[i]
        active_die = max(state.active_dies)
        rows.append(
            Row(
                label=f"{label} @ {act:.0%}",
                paper={
                    "active_mw": p_active,
                    "total_mw": p_total,
                    "f2b_mv": p_f2b,
                    "f2f_mv": p_f2f,
                },
                model={
                    "active_mw": die_power_mw(DDR3_POWER, fp, state, active_die),
                    "total_mw": stack_power_mw(DDR3_POWER, fp, state),
                    "f2b_mv": results["f2b"][i].dram_max_mv,
                    "f2f_mv": results["f2f"][i].dram_max_mv,
                },
            )
        )
    return ExperimentResult(
        experiment_id="table5",
        title="Memory state and I/O activity (Table 5)",
        rows=rows,
        notes=[
            "power model is linear in activity and exact at 100%/50% "
            "(the paper's own 25% row is inconsistent with its text, see "
            "repro.power.model)",
            "F2B worst case is 0-0-0-2; with F2F PDN sharing the worst "
            "case moves to the intra-pair overlapping 0-0-2-2 state",
        ],
    )
