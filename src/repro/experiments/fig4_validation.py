"""Figure 4: R-Mesh validation against the golden reference solver.

The paper validates the R-Mesh against Cadence EPS on the generated 2D
DDR3 design with "the left two banks in the interleaving read mode":
max IR 32.6 mV (EPS) vs 32.2 mV (R-Mesh), 1.3% error, 517x speedup.
Our reference is the same physics at fine discretization (see
repro.rmesh.reference).
"""

from __future__ import annotations

from repro.designs import benchmark
from repro.experiments.base import ExperimentResult, Row, register
from repro.power.model import DDR3_POWER
from repro.power.state import MemoryState
from repro.pdn.stackup import build_single_die_stack
from repro.rmesh.reference import validate_against_reference

PAPER = {"rmesh_mv": 32.2, "eps_mv": 32.6, "error_pct": 1.3, "speedup": 517.0}


@register("fig4")
def run(fast: bool = True) -> ExperimentResult:
    """Run the Figure 4 coarse-vs-reference validation."""
    fp = benchmark("ddr3_off").stack.dram_floorplan
    state = MemoryState(((0, 1),))  # the left two banks, interleaving read

    def build(pitch):
        return build_single_die_stack(fp, DDR3_POWER, pitch=pitch)

    report = validate_against_reference(
        build, state, reference_pitch=0.20 if fast else 0.13
    )
    rows = [
        Row(
            label="2D DDR3, left two banks interleaving",
            paper=dict(PAPER),
            model={
                "rmesh_mv": report.coarse_ir_mv,
                "eps_mv": report.reference_ir_mv,
                "error_pct": report.error_percent,
                "speedup": report.speedup,
            },
        ),
        Row(
            label="resistor count (coarse vs reference)",
            model={
                "coarse": report.coarse_resistors,
                "reference": report.reference_resistors,
            },
        ),
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="R-Mesh validation vs high-resolution reference (EPS stand-in)",
        rows=rows,
        notes=[
            "the reference is a fine-grid solve of the same network; the "
            "paper's 517x speedup also includes skipping layout parasitic "
            "extraction, which has no analog here",
        ],
    )
