"""Table 9: best co-optimized solutions for all four benchmarks.

For each benchmark the alpha sweep {0, 0.3, 1} plus the industry baseline
is evaluated; the "Matlab" column is the regression surrogate's
prediction, the "R-Mesh" column the verifying full solve, and the cost
comes from the Table 8 model.
"""

from __future__ import annotations

from repro.designs import all_benchmarks, off_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.opt import CoOptimizer

#: Paper Table 9 (per benchmark: alpha -> (regression IR, R-Mesh IR, cost)).
PAPER = {
    "ddr3_off": {
        0.0: (88.73, 88.73, 0.23),
        0.3: (22.75, 23.01, 0.37),
        1.0: (9.733, 9.540, 0.87),
        "baseline": (30.03, 30.03, 0.35),
    },
    "ddr3_on": {
        0.0: (117.6, 117.6, 0.17),
        0.3: (25.51, 27.09, 0.32),
        1.0: (9.864, 9.843, 0.92),
        "baseline": (31.18, 31.18, 0.35),
    },
    "wideio": {
        0.0: (110.1, 110.2, 0.35),
        0.3: (4.864, 4.841, 0.73),
        1.0: (4.864, 4.841, 0.73),
        "baseline": (13.56, 13.62, 0.62),
    },
    "hmc": {
        0.0: (459.7, 459.7, 0.35),
        0.3: (18.63, 18.65, 0.76),
        1.0: (13.76, 13.84, 1.17),
        "baseline": (47.90, 47.90, 0.77),
    },
}


@register("table9")
def run(fast: bool = True) -> ExperimentResult:
    """Run the Table 9 co-optimization sweeps."""
    benches = [off_chip_ddr3()] if fast else list(all_benchmarks().values())
    rows = []
    for bench in benches:
        opt = CoOptimizer(bench, tc_points=2 if fast else 3)
        base = opt.baseline_result()
        p_reg, p_mesh, p_cost = PAPER[bench.key]["baseline"]
        rows.append(
            Row(
                label=f"{bench.key} baseline",
                paper={"rmesh_mv": p_mesh, "cost": p_cost},
                model={
                    "rmesh_mv": base.verified_ir_mv,
                    "cost": base.cost,
                    "config": bench.baseline.label(),
                },
            )
        )
        for result in opt.alpha_sweep():
            p_reg, p_mesh, p_cost = PAPER[bench.key][result.alpha]
            rows.append(
                Row(
                    label=f"{bench.key} alpha={result.alpha:.1f}",
                    paper={
                        "regression_mv": p_reg,
                        "rmesh_mv": p_mesh,
                        "cost": p_cost,
                    },
                    model={
                        "regression_mv": result.predicted_ir_mv,
                        "rmesh_mv": result.verified_ir_mv,
                        "cost": result.cost,
                        "config": result.config.label(),
                    },
                )
            )
    return ExperimentResult(
        experiment_id="table9",
        title="Cross-domain co-optimization (Table 9)",
        rows=rows,
        notes=[
            "alpha=0 minimizes cost, alpha=1 minimizes IR drop, alpha=0.3 "
            "is the paper's preferred tradeoff",
            "option choices may differ from the paper where our calibrated "
            "packaging benefits differ (e.g. wire bonding strength); the "
            "headline priorities -- packaging options first, extra TSVs "
            "last -- reproduce",
        ],
    )
