"""Figure 5: TSV count and C4 alignment impact.

"Using more TSVs reduces IR drop, but the reduction saturates with many
TSVs.  By carefully placing TSVs near C4 bumps on the logic die and
reducing average C4-to-TSV distance, IR drop reduces by as much as 51.5%
in on-chip stacked DDR3 while logic IR drop merely increases by 0.2%.
More TSVs do not always guarantee a lower IR drop because of TSV
misalignment, especially when the TSV count is small.  For on-chip
designs, increasing the TSV count leads to larger coupling from T2."

The sweep uses uniformly distributed TSVs (the paper's uniform-pitch
assumption) with the misaligned vs aligned C4 model of repro.pdn.tsv.
"""

from __future__ import annotations

from repro.designs import off_chip_ddr3, on_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.experiments.common import solve_design
from repro.pdn.config import TSVLocation
from repro.pdn.sweep import SweepSolveSession
from repro.pdn.tsv import distributed_tsv_points, mean_alignment_distance
from repro.tech.calibration import DEFAULT_TECH


@register("fig5")
def run(fast: bool = True) -> ExperimentResult:
    """Sweep TSV count and C4 alignment (Figure 5)."""
    counts = (15, 60, 240) if fast else (15, 33, 60, 120, 240, 480)
    off = off_chip_ddr3()
    on = on_chip_ddr3()
    state = off.reference_state()
    outline = off.stack.dram_floorplan.outline

    # One warm-start chain per curve: each (benchmark, alignment) pair
    # walks the TSV-count knob in order, so under an iterative backend
    # successive points reuse the neighbor's preconditioner + solution.
    # Under the default direct backend the sessions are pass-throughs.
    sessions = {
        (tag, atag): SweepSolveSession()
        for tag in ("off", "on")
        for atag in ("misaligned", "aligned")
    }

    rows = []
    best_alignment_gain = 0.0
    for count in counts:
        values = {}
        for bench, tag in ((off, "off"), (on, "on")):
            config = bench.baseline.with_options(
                tsv_count=count,
                tsv_location=TSVLocation.DISTRIBUTED,
                dedicated_tsv=False,
            )
            for aligned, atag in ((False, "misaligned"), (True, "aligned")):
                res = solve_design(
                    bench,
                    config.with_options(tsv_aligned=aligned),
                    state,
                    session=sessions[(tag, atag)],
                )
                values[f"{tag}_{atag}_mv"] = res.dram_max_mv
                if tag == "on" and aligned:
                    values["logic_mv"] = res.logic_max_mv
            gain = 1.0 - values[f"{tag}_aligned_mv"] / values[f"{tag}_misaligned_mv"]
            if tag == "on":
                best_alignment_gain = max(best_alignment_gain, gain * 100.0)
        points = distributed_tsv_points(outline, count)
        values["mean_c4_dist_mm"] = mean_alignment_distance(
            points, outline, DEFAULT_TECH.c4.pitch
        )
        rows.append(Row(label=f"TC={count}", model=values))

    rows.append(
        Row(
            label="max alignment gain (on-chip)",
            paper={"reduction_pct": 51.5},
            model={"reduction_pct": best_alignment_gain},
        )
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="TSV count and C4 alignment (Figure 5)",
        rows=rows,
        notes=[
            "paper reports curve shapes: reduction saturates with count; "
            "alignment matters most at small counts",
        ],
    )
