"""Section 6.1: regression quality and search-time reduction.

The paper: brute-force search of one benchmark would take 4637 hours on a
four-core system; sampling + MATLAB regression reduces the total to ten
hours, with RMSE < 0.135 and R^2 > 0.999 over the sampled space.

Here the per-solve time is measured, the brute-force time is *projected*
from it (never run), and the regression is fitted with numpy.
"""

from __future__ import annotations

import time

from repro.designs import all_benchmarks, off_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.opt import CoOptimizer
from repro.regress import IRDropSurrogate, sample_design_space


@register("sec61")
def run(fast: bool = True) -> ExperimentResult:
    """Fit and report the regression surrogate (section 6.1)."""
    benches = [off_chip_ddr3()] if fast else list(all_benchmarks().values())
    rows = []
    for bench in benches:
        t0 = time.perf_counter()
        samples = sample_design_space(bench, tc_points=2 if fast else 3)
        sample_time = time.perf_counter() - t0
        surrogate = IRDropSurrogate()
        report = surrogate.fit(samples, sample_time_s=sample_time)

        per_solve = sample_time / max(report.num_samples, 1)
        brute = CoOptimizer.__new__(CoOptimizer)
        brute.bench = bench  # only brute_force_size is used
        brute_solves = CoOptimizer.brute_force_size(brute)
        rows.append(
            Row(
                label=bench.key,
                paper={"rmse_mv": 0.135, "r_squared": 0.999},
                model={
                    "rmse_mv": report.rmse_mv,
                    "r_squared": report.r_squared,
                    "samples": report.num_samples,
                    "combos": report.num_combos,
                    "sample_hours": sample_time / 3600.0,
                    "projected_brute_hours": brute_solves * per_solve / 3600.0,
                },
            )
        )
    return ExperimentResult(
        experiment_id="sec61",
        title="Regression analysis quality and runtime (section 6.1)",
        rows=rows,
        notes=[
            "paper: brute force 4637 h (4-core) -> 10 h with regression; "
            "our projected brute-force hours are for this machine and mesh",
            "our RMSE is larger than the paper's 0.135 mV because TSV "
            "positions snap to the production mesh, adding discretization "
            "noise to the sampled response surface",
        ],
    )
