"""Shared helpers for experiment drivers."""

from __future__ import annotations

from typing import Optional

from repro.designs import BenchmarkSpec, benchmark
from repro.pdn.config import PDNConfig
from repro.perf.cache import cached_build_stack
from repro.power.state import MemoryState
from repro.tech.calibration import DEFAULT_TECH


def solve_design(
    bench: BenchmarkSpec,
    config: PDNConfig,
    state: MemoryState,
    pitch: Optional[float] = None,
    session=None,
):
    """Build a stack for (benchmark, config) and solve one state.

    Stacks come from the keyed solver cache: experiments that revisit a
    configuration (e.g. the same baseline across many states) reuse the
    assembled network and its factorization.  Passing a
    :class:`~repro.pdn.sweep.SweepSolveSession` routes the solve through
    its warm-start chain (identical results under the direct backend;
    faster iterative solves along a sweep).
    """
    if session is not None:
        return session.solve(bench, config, state)
    stack = cached_build_stack(bench.stack, config, tech=DEFAULT_TECH, pitch=pitch)
    return stack.solve_state(state)


def explain_design(
    bench: BenchmarkSpec,
    config: PDNConfig,
    state: MemoryState,
    pitch: Optional[float] = None,
):
    """Build, solve, and diagnose one design point (``repro3d explain``).

    Returns a :class:`repro.pdn.diagnose.DesignDiagnosis`: branch
    currents recovered and KCL-checked, the worst-node supply path
    decomposed by component, and every branch attributed to its plan op.
    The stack comes from the same keyed cache as :func:`solve_design`,
    so explaining a design an experiment just solved reuses its
    factorization.
    """
    from repro.pdn.diagnose import diagnose_stack

    stack = cached_build_stack(bench.stack, config, tech=DEFAULT_TECH, pitch=pitch)
    return diagnose_stack(stack, state)


def ddr3_state(text: str) -> MemoryState:
    """Parse a stacked-DDR3 memory state string."""
    return MemoryState.from_string(
        text, benchmark("ddr3_off").stack.dram_floorplan
    )
