"""Table 4: impact of intra-pair overlapping on the F2F benefit.

F2F-bonded pairs share four PDN metal layers; the benefit collapses when
both dies of a pair have active banks in the same top-down location
("intra-pair overlapping") and grows with the separation of the active
regions (paper section 4.3, Figure 8).

Position classes (this model): a = left edge column (banks 0, 4; the
worst-case placement used throughout), b = (1, 5), c = (2, 6),
d = (3, 7) -- columns left to right, so separation from ``a`` increases
monotonically b -> c -> d.
"""

from __future__ import annotations

from repro.designs import off_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.experiments.common import ddr3_state, solve_design
from repro.pdn.config import Bonding

PAPER = {
    "0-0-2a-2a": (True, 28.14, 27.21, -3.3),
    "0-0-2b-2b": (True, 18.06, 17.42, -3.5),
    "0-2a-0-2a": (False, 27.32, 15.24, -44.2),
    "2a-0-0-2a": (False, 26.51, 15.24, -42.5),
    "0-0-2b-2a": (False, 27.38, 17.98, -34.3),
    "0-0-2c-2a": (False, 27.04, 17.10, -36.8),
    "0-0-2d-2a": (False, 26.86, 15.27, -43.1),
}


@register("table4")
def run(fast: bool = True) -> ExperimentResult:
    """Evaluate intra-pair overlapping states (Table 4)."""
    bench = off_chip_ddr3()
    f2b = bench.baseline
    f2f = bench.baseline.with_options(bonding=Bonding.F2F)
    rows = []
    for label, (overlap, p_f2b, p_f2f, p_delta) in PAPER.items():
        state = ddr3_state(label)
        v_f2b = solve_design(bench, f2b, state).dram_max_mv
        v_f2f = solve_design(bench, f2f, state).dram_max_mv
        rows.append(
            Row(
                label=f"{label} ({'overlap' if overlap else 'no overlap'})",
                paper={"f2b_mv": p_f2b, "f2f_mv": p_f2f, "delta_pct": p_delta},
                model={
                    "f2b_mv": v_f2b,
                    "f2f_mv": v_f2f,
                    "delta_pct": 100.0 * (v_f2f - v_f2b) / v_f2b,
                },
            )
        )
    return ExperimentResult(
        experiment_id="table4",
        title="Intra-pair overlapping and the F2F benefit (Table 4)",
        rows=rows,
        notes=[
            "known deviation: the paper's position class b has intrinsically "
            "lower IR than a (asymmetric die effect we do not model); the "
            "overlap-vs-separation trend, the paper's main point, reproduces",
        ],
    )
