"""Extension experiment: IR-drop-aware scheduling on the HMC.

The paper's reference [4] (Shevgoor et al., MICRO'13) characterized the
bank-activity/IR-drop relationship in an HMC and proposed IR-aware
request scheduling; the paper itself evaluates policies only on stacked
DDR3.  This driver closes that loop with the same machinery on the HMC
benchmark: 16 vault channels, up to 8 active banks per die (2 per
vault), and an IR-drop LUT computed lazily over the visited states.
"""

from __future__ import annotations

from repro.controller import (
    IRAwareDistR,
    IRAwareFCFS,
    IRDropLUT,
    SimConfig,
    StandardJEDEC,
    WorkloadConfig,
    generate_workload,
)
from repro.controller.engine import EventDrivenEngine
from repro.designs import hmc
from repro.dram.timing import TimingParams
from repro.experiments.base import ExperimentResult, Row, register
from repro.pdn import build_stack

#: constraint as a fraction of the heavy reference state's IR drop.
CONSTRAINT_FRACTION = 0.90


@register("ext_hmc")
def run(fast: bool = True) -> ExperimentResult:
    """Run IR-aware scheduling on the HMC (extension)."""
    bench = hmc()
    stack = build_stack(bench.stack, bench.baseline)
    lut = IRDropLUT(stack, max_banks_per_die=8, precompute=False)
    ref_ir = lut.lookup(bench.reference_state().counts)
    constraint = CONSTRAINT_FRACTION * ref_ir

    timing = TimingParams.hmc_2500()
    cfg = SimConfig(
        timing=timing,
        num_dies=4,
        banks_per_die=32,
        num_channels=16,
        max_banks_per_die=8,
        max_banks_per_channel=2,
    )

    def workload():
        return generate_workload(
            WorkloadConfig(
                num_requests=2000 if fast else 10_000,
                banks_per_die=32,
                arrival_interval=1,  # bandwidth part: saturating traffic
            )
        )

    rows = []
    for policy in (
        StandardJEDEC(timing),
        IRAwareFCFS(lut, constraint),
        IRAwareDistR(lut, constraint),
    ):
        res = EventDrivenEngine(cfg, policy, workload(), report_lut=lut).run()
        rows.append(
            Row(
                label=policy.name,
                model={
                    "runtime_us": res.runtime_us,
                    "bandwidth": res.bandwidth_reads_per_clk,
                    "max_ir_mv": res.max_ir_mv,
                },
            )
        )
    return ExperimentResult(
        experiment_id="ext_hmc",
        title="IR-drop-aware scheduling on the HMC (extension)",
        rows=rows,
        notes=[
            f"constraint {constraint:.1f} mV = {CONSTRAINT_FRACTION:.0%} of the "
            f"8-8-8-8 reference state's {ref_ir:.1f} mV",
            "the JEDEC-style controller applies tRRD/tFAW per channel-less "
            "rank and is IR-blind; the IR-aware policies exploit the 16 "
            "vault channels under the LUT",
        ],
    )
