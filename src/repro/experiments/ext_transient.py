"""Extension experiment: transient droop of an activation burst.

Not a paper table -- quantifies the AC claims of section 4.1 with the RC
transient solver: the peak droop of a short interleaved-read burst under
wire-bonding and decoupling-capacitance options, on the coupled on-chip
design (where the package capacitor is otherwise stranded behind the
logic die).
"""

from __future__ import annotations

from repro.designs import on_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.pdn import build_stack
from repro.power import MemoryState
from repro.rmesh.transient import DecapConfig, TransientSolver


@register("ext_transient")
def run(fast: bool = True) -> ExperimentResult:
    """Simulate burst droop vs decap/wirebond (extension)."""
    bench = on_chip_ddr3()
    fp = bench.stack.dram_floorplan
    idle = MemoryState.idle(4)
    active = MemoryState.from_string("0-0-0-2", fp)
    burst_ns = 20.0
    decaps = {
        "small decap": DecapConfig(die_nf_per_mm2=0.2, package_uf=0.05),
        "large decap": DecapConfig(die_nf_per_mm2=2.0, package_uf=10.0),
    }
    rows = []
    for wb in (False, True):
        config = bench.baseline.with_options(dedicated_tsv=False, wire_bond=wb)
        stack = build_stack(bench.stack, config)
        dc = stack.dram_max_mv(active)
        for decap_label, decap in decaps.items():
            solver = TransientSolver(stack, decap, dt_ns=1.0 if fast else 0.5)
            res = solver.simulate([(idle, 5.0), (active, burst_ns), (idle, 60.0)])
            rows.append(
                Row(
                    label=f"{'wire-bonded' if wb else 'no wirebond'}, {decap_label}",
                    model={
                        "burst_peak_mv": res.peak_mv,
                        "dc_droop_mv": dc,
                        "suppression_pct": 100.0 * (1 - res.peak_mv / dc),
                        "settle_ns": res.settling_time_ns(),
                    },
                )
            )
    return ExperimentResult(
        experiment_id="ext_transient",
        title="Burst droop vs wire bonding and decap (extension)",
        rows=rows,
        notes=[
            f"stimulus: {burst_ns:.0f} ns interleaved-read burst (state "
            "0-0-0-2) from quiescent; RC only, no package inductance",
            "bond wires + off-chip decap give the lowest peak; a large "
            "capacitor without bond wires stays stranded behind the "
            "resistive logic die (section 4.1's AC claim, quantified)",
        ],
    )
