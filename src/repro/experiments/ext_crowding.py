"""Extension experiment: TSV current crowding across design options.

Not a paper table -- the paper cites current crowding qualitatively
(section 3.2, reference [6]); this driver quantifies it with the branch-
current analysis: per-TSV current distribution at each die interface for
the main design options.
"""

from __future__ import annotations

from repro.designs import off_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.pdn import Bonding, BumpLocation, TSVLocation, build_stack
from repro.power import MemoryState
from repro.rmesh.currents import BranchCurrentAnalysis


@register("ext_crowding")
def run(fast: bool = True) -> ExperimentResult:
    """Quantify per-TSV current crowding (extension)."""
    bench = off_chip_ddr3()
    state = MemoryState.from_string("0-0-0-2", bench.stack.dram_floorplan)
    options = {
        "edge TSVs (baseline)": bench.baseline,
        "edge TSVs, 240x": bench.baseline.with_options(tsv_count=240),
        "center cluster": bench.baseline.with_options(
            tsv_location=TSVLocation.CENTER, bump_location=BumpLocation.CENTER
        ),
        "F2F pairs": bench.baseline.with_options(bonding=Bonding.F2F),
    }
    rows = []
    for label, config in options.items():
        stack = build_stack(bench.stack, config)
        result = stack.solve_state(state)
        analysis = BranchCurrentAnalysis(result.raw)
        # The interface feeding the active top die is the stressed one.
        report = analysis.interface_crowding("dram3/M3", "dram4/M3")
        supply = analysis.supply_crowding()
        rows.append(
            Row(
                label=label,
                model={
                    "links": report.currents.size,
                    "worst_link_ma": report.max_a * 1e3,
                    "crowding_factor": report.crowding_factor,
                    "gini": report.gini,
                    "supply_crowding": supply.crowding_factor,
                    "ir_mv": result.dram_max_mv,
                },
            )
        )
    return ExperimentResult(
        experiment_id="ext_crowding",
        title="TSV current crowding across design options (extension)",
        rows=rows,
        notes=[
            "crowding factor = worst link current / uniform share; the "
            "F2F interface replaces discrete TSVs with dense bond vias, "
            "spreading the same current over far more links",
        ],
    )
