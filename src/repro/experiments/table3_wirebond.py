"""Table 3: impact of dedicated TSVs and backside wire bonding.

=========  =========  ========  ===========  ======
Design     Dedicated  Baseline  Wire-bonded  Delta
=========  =========  ========  ===========  ======
On-chip    no         64.41     30.04        -53.4%
On-chip    yes        31.18     27.18        -12.8%
Off-chip   (n/a)      30.03     27.10        -9.76%
=========  =========  ========  ===========  ======
"""

from __future__ import annotations

from repro.designs import off_chip_ddr3, on_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.experiments.common import solve_design

PAPER = [
    ("on-chip, no dedicated TSV", 64.41, 30.04, -53.4),
    ("on-chip, dedicated TSV", 31.18, 27.18, -12.8),
    ("off-chip", 30.03, 27.10, -9.76),
]


@register("table3")
def run(fast: bool = True) -> ExperimentResult:
    """Evaluate dedicated TSVs and wire bonding (Table 3)."""
    off = off_chip_ddr3()
    on = on_chip_ddr3()
    state = off.reference_state()
    cases = [
        ("on-chip, no dedicated TSV", on, on.baseline.with_options(dedicated_tsv=False)),
        ("on-chip, dedicated TSV", on, on.baseline),
        ("off-chip", off, off.baseline),
    ]
    rows = []
    for (label, bench, config), (_, p_base, p_wb, p_delta) in zip(cases, PAPER):
        base = solve_design(bench, config, state).dram_max_mv
        wb = solve_design(bench, config.with_options(wire_bond=True), state).dram_max_mv
        rows.append(
            Row(
                label=label,
                paper={"baseline_mv": p_base, "wirebond_mv": p_wb, "delta_pct": p_delta},
                model={
                    "baseline_mv": base,
                    "wirebond_mv": wb,
                    "delta_pct": 100.0 * (wb - base) / base,
                },
            )
        )
    return ExperimentResult(
        experiment_id="table3",
        title="Dedicated TSVs and wire bonding (Table 3)",
        rows=rows,
        notes=[
            "both dedicated TSVs and wire bonds provide direct supply, so "
            "combining them adds only marginal benefit (paper section 4.1)",
        ],
    )
