"""Table 1: benchmark specifications.

Static in the paper; here the model columns are read back from the built
floorplans and design specs, verifying the implementation matches the
published geometry.
"""

from __future__ import annotations

from repro.designs import all_benchmarks
from repro.dram.timing import TimingParams
from repro.experiments.base import ExperimentResult, Row, register

#: Paper Table 1 (per benchmark key).
PAPER = {
    "ddr3_off": {"banks": 8, "channels": 1, "speed_mbps": 1600, "dram_w": 6.8, "dram_h": 6.7},
    "ddr3_on": {"banks": 8, "channels": 1, "speed_mbps": 1600, "dram_w": 6.8, "dram_h": 6.7},
    "wideio": {"banks": 16, "channels": 4, "speed_mbps": 200, "dram_w": 7.2, "dram_h": 7.2},
    "hmc": {"banks": 32, "channels": 16, "speed_mbps": 2500, "dram_w": 7.2, "dram_h": 6.4},
}

_TIMING = {
    "ddr3_off": TimingParams.ddr3_1600,
    "ddr3_on": TimingParams.ddr3_1600,
    "wideio": TimingParams.wideio_200,
    "hmc": TimingParams.hmc_2500,
}


@register("table1")
def run(fast: bool = True) -> ExperimentResult:
    """Regenerate Table 1 from the built floorplans and timing."""
    rows = []
    for key, bench in all_benchmarks().items():
        fp = bench.stack.dram_floorplan
        timing = _TIMING[key]()
        # Mbps per pin: DDR transfers two bits per clock for DDR3/HMC,
        # one for the SDR Wide I/O interface.
        ddr = 2 if key != "wideio" else 1
        rows.append(
            Row(
                label=bench.title,
                paper=dict(PAPER[key]),
                model={
                    "banks": fp.num_banks,
                    "channels": fp.num_channels,
                    "speed_mbps": timing.clock_mhz * ddr,
                    "dram_w": fp.outline.width,
                    "dram_h": fp.outline.height,
                },
            )
        )
    return ExperimentResult(
        experiment_id="table1",
        title="Benchmark specifications",
        rows=rows,
        notes=["4 Gb x 4 dies per stack; logic dies: T2 9.0x8.0 mm, HMC 8.8x6.4 mm"],
    )
