"""Section 3.1: stand-alone vs mounted on a logic die.

"With a 50.05 mV logic die power noise, the DRAM IR drop increases from
30.03 mV in the off-chip stacked DDR3 design to 64.41 mV in the on-chip
design."  Dedicated via-last TSVs decouple the PDNs and restore an IR
drop "similar to that of the off-chip design" (31.18 mV, Table 3).
"""

from __future__ import annotations

from repro.designs import off_chip_ddr3, on_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.experiments.common import solve_design


@register("sec31")
def run(fast: bool = True) -> ExperimentResult:
    """Compare stand-alone vs mounted designs (section 3.1)."""
    off = off_chip_ddr3()
    on = on_chip_ddr3()
    state = off.reference_state()

    off_res = solve_design(off, off.baseline, state)
    coupled = on.baseline.with_options(dedicated_tsv=False)
    on_res = solve_design(on, coupled, state)
    ded_res = solve_design(on, on.baseline, state)

    rows = [
        Row(
            label="off-chip (stand-alone)",
            paper={"ir_mv": 30.03},
            model={"ir_mv": off_res.dram_max_mv},
        ),
        Row(
            label="on-chip, PDNs coupled",
            paper={"ir_mv": 64.41, "logic_mv": 50.05},
            model={"ir_mv": on_res.dram_max_mv, "logic_mv": on_res.logic_max_mv},
        ),
        Row(
            label="on-chip, dedicated via-last TSVs",
            paper={"ir_mv": 31.18},
            model={"ir_mv": ded_res.dram_max_mv},
        ),
    ]
    return ExperimentResult(
        experiment_id="sec31",
        title="Stand-alone vs mounted on a logic die (section 3.1)",
        rows=rows,
    )
