"""Section 3 opening claim: 2x PDN metal usage -> >40% IR-drop reduction.

"Assuming a 10% M2 usage and 20% M3 usage for VDD as baseline, with 2x
PDN metal usage, IR drop is reduced more than 40% for stacked DDR3."
"""

from __future__ import annotations

from repro.designs import off_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.experiments.common import solve_design


@register("sec3_metal")
def run(fast: bool = True) -> ExperimentResult:
    """Sweep PDN metal usage (section 3 opening claim)."""
    bench = off_chip_ddr3()
    state = bench.reference_state()
    base = solve_design(bench, bench.baseline, state).dram_max_mv
    rows = [
        Row(
            label="1.0x metal (M2 10% / M3 20%)",
            paper={"ir_mv": 30.03},
            model={"ir_mv": base},
        )
    ]
    scales = (1.5, 2.0) if fast else (1.25, 1.5, 1.75, 2.0)
    for scale in scales:
        config = bench.baseline.with_options(
            m2_usage=min(0.10 * scale, 0.20), m3_usage=0.20 * scale
        )
        ir = solve_design(bench, config, state).dram_max_mv
        row = Row(
            label=f"{scale:.2f}x metal",
            model={"ir_mv": ir, "reduction_pct": 100.0 * (1 - ir / base)},
        )
        if scale == 2.0:
            row.paper["reduction_pct"] = 40.0  # "more than 40%"
        rows.append(row)
    return ExperimentResult(
        experiment_id="sec3_metal",
        title="PDN metal usage scaling (section 3)",
        rows=rows,
        notes=["paper states the 2x reduction as a lower bound (>40%)"],
    )
