"""Experiment drivers: one module per paper table / figure.

Each driver exposes ``run(fast: bool = True) -> ExperimentResult``; the
registry maps experiment ids (``"table6"``, ``"fig4"``, ...) to drivers.
``fast`` selects reduced sweeps where the full experiment is expensive
(the benchmark harness uses the full versions).
"""

from repro.experiments.base import ExperimentResult, Row, registry, run_experiment

# Importing the driver modules registers them.
from repro.experiments import (  # noqa: F401  (registration side effect)
    ext_crowding,
    ext_hmc_scheduling,
    ext_transient,
    fig4_validation,
    fig5_tsv_count_alignment,
    fig9_constraint_sweep,
    sec3_metal_usage,
    sec31_mounting,
    sec61_regression,
    table1_specs,
    table2_tsv_rdl,
    table3_wirebond,
    table4_f2f_overlap,
    table5_state_ioactivity,
    table6_policies,
    table8_cost_model,
    table9_cooptimization,
)

__all__ = ["ExperimentResult", "Row", "registry", "run_experiment"]
