"""Table 7 + Figure 9: IR-drop constraint vs memory performance.

Six designs (Table 7) are swept over IR-drop constraints with the
IR-drop-aware DistR policy.  The paper's observations:

* a too-tight constraint allows no memory state (runtime diverges);
* relaxing the constraint admits more parallel reads;
* the F2F design (case 3) outperforms the 1.5x-PDN F2B design (case 2)
  below an ~18 mV constraint because PDN sharing shines when bank
  activity is low ("F2F has a higher tolerance to low IR-drop
  constraints").

Table 7 max IR drops: case 1: 30.03, 2: 22.15, 3: 17.18, 4: 64.41,
5: 30.04, 6: 65.43 mV.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.controller import (
    IRAwareDistR,
    IRDropLUT,
    MemoryControllerSim,
    SimConfig,
    generate_workload,
)
from repro.errors import SimulationError
from repro.designs import BenchmarkSpec, off_chip_ddr3, on_chip_ddr3
from repro.dram.timing import TimingParams
from repro.experiments.base import ExperimentResult, Row, register
from repro.pdn.config import Bonding, PDNConfig
from repro.perf.cache import cached_build_stack

PAPER_MAX_IR = {1: 30.03, 2: 22.15, 3: 17.18, 4: 64.41, 5: 30.04, 6: 65.43}


def table7_cases() -> List[Tuple[int, str, BenchmarkSpec, PDNConfig]]:
    """The six Table 7 design cases."""
    off = off_chip_ddr3()
    on = on_chip_ddr3()
    coupled = on.baseline.with_options(dedicated_tsv=False)
    return [
        (1, "off-chip F2B 1x", off, off.baseline),
        (2, "off-chip F2B 1.5x PDN", off,
         off.baseline.with_options(m2_usage=0.15, m3_usage=0.30)),
        (3, "off-chip F2F 1x", off,
         off.baseline.with_options(bonding=Bonding.F2F)),
        (4, "on-chip F2B 1x", on, coupled),
        (5, "on-chip F2B 1x + wirebond", on,
         coupled.with_options(wire_bond=True)),
        (6, "on-chip F2F 1x", on,
         coupled.with_options(bonding=Bonding.F2F)),
    ]


@register("fig9")
def run(fast: bool = True) -> ExperimentResult:
    """Sweep IR-drop constraints over the Table 7 cases."""
    cases = table7_cases()
    if fast:
        cases = [c for c in cases if c[0] in (1, 2, 3)]
        constraints = (16.0, 20.0, 24.0, 28.0)
    else:
        # Extend beyond the off-chip range so the coupled on-chip cases
        # (whose cheapest states sit near 42-48 mV) get feasible points.
        constraints = tuple(float(c) for c in range(14, 36, 2)) + tuple(
            float(c) for c in range(38, 72, 6)
        )

    timing = TimingParams.ddr3_1600()
    rows = []
    for case_id, label, bench, config in cases:
        stack = cached_build_stack(bench.stack, config)
        lut = IRDropLUT(stack)
        model: Dict[str, object] = {
            "max_ir_mv": lut.lookup(tuple(
                2 if d == bench.stack.num_dram_dies - 1 else 0
                for d in range(bench.stack.num_dram_dies)
            )),
            "min_state_mv": lut.min_active_ir(),
        }
        for constraint in constraints:
            if constraint < lut.min_active_ir():
                # No memory state is allowed at all: runtime diverges.
                model[f"runtime_us@{constraint:.0f}mV"] = float("inf")
                continue
            policy = IRAwareDistR(lut, constraint)
            sim = MemoryControllerSim(
                SimConfig(timing=timing), policy, generate_workload(), report_lut=lut
            )
            try:
                res = sim.run(max_cycles=600_000)
                finished = res.finished
            except SimulationError:
                # Livelock: the constraint forbids states some queued
                # requests would need -- effectively infinite runtime.
                finished = False
            model[f"runtime_us@{constraint:.0f}mV"] = (
                res.runtime_us if finished else float("inf")
            )
        rows.append(
            Row(
                label=f"case {case_id}: {label}",
                paper={"max_ir_mv": PAPER_MAX_IR[case_id]},
                model=model,
            )
        )
    return ExperimentResult(
        experiment_id="fig9",
        title="Runtime vs IR-drop constraint for the Table 7 cases (Figure 9)",
        rows=rows,
        notes=[
            "inf runtime = the constraint admits no memory state",
            "paper reports curves, not numbers; the reproduced shape is "
            "runtime falling as the constraint relaxes, with better-PDN "
            "designs usable at tighter constraints",
        ],
    )
