"""Table 2: TSV location and RDL options (Figure 6's four designs).

(a) edge TSVs + matching bumps:        highest cost, 30.03 mV
(b) center TSVs + center bumps:        lowest cost,  50.76 mV
(c) edge TSVs + center bumps + RDL:    high cost,    38.46 mV
(d) center TSVs + center bumps + RDL:  medium cost,  49.36 mV
"""

from __future__ import annotations

from repro.cost import config_cost
from repro.designs import off_chip_ddr3
from repro.experiments.base import ExperimentResult, Row, register
from repro.experiments.common import solve_design
from repro.pdn.config import BumpLocation, RDLScope, TSVLocation

PAPER = {
    "(a) edge + match": 30.03,
    "(b) center + center": 50.76,
    "(c) edge + center + RDL": 38.46,
    "(d) center + center + RDL": 49.36,
}


@register("table2")
def run(fast: bool = True) -> ExperimentResult:
    """Evaluate the four TSV/RDL options of Table 2."""
    bench = off_chip_ddr3()
    state = bench.reference_state()
    base = bench.baseline
    options = {
        "(a) edge + match": base,
        "(b) center + center": base.with_options(
            tsv_location=TSVLocation.CENTER, bump_location=BumpLocation.CENTER
        ),
        "(c) edge + center + RDL": base.with_options(
            bump_location=BumpLocation.CENTER, rdl=RDLScope.ALL
        ),
        "(d) center + center + RDL": base.with_options(
            tsv_location=TSVLocation.CENTER,
            bump_location=BumpLocation.CENTER,
            rdl=RDLScope.ALL,
        ),
    }
    rows = []
    for label, config in options.items():
        ir = solve_design(bench, config, state).dram_max_mv
        cost = config_cost(config, bench.package_cost).total
        rows.append(
            Row(
                label=label,
                paper={"ir_mv": PAPER[label]},
                model={"ir_mv": ir, "cost": cost},
            )
        )
    return ExperimentResult(
        experiment_id="table2",
        title="TSV location and RDL options (Table 2 / Figure 6)",
        rows=rows,
        notes=[
            "paper ranks costs qualitatively (highest/lowest/high/medium); "
            "the cost column uses the Table 8 model",
        ],
    )
