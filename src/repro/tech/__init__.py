"""Technology parameters: metal stacks, TSVs, bumps, RDL, wire bonds.

The numeric values live in :mod:`repro.tech.calibration` and are the only
free parameters of the physical model; they were tuned once against the
calibration anchors listed in DESIGN.md section 6 (the aggregate numbers
the paper publishes) and are not touched by experiments.
"""

from repro.tech.metals import MetalLayer, MetalStack, RouteDirection
from repro.tech.vertical import (
    C4Tech,
    F2FViaTech,
    RDLTech,
    TSVTech,
    WireBondTech,
)
from repro.tech.calibration import (
    TechConstants,
    DEFAULT_TECH,
    dram_metal_stack,
    logic_metal_stack,
)

__all__ = [
    "MetalLayer",
    "MetalStack",
    "RouteDirection",
    "TSVTech",
    "C4Tech",
    "F2FViaTech",
    "RDLTech",
    "WireBondTech",
    "TechConstants",
    "DEFAULT_TECH",
    "dram_metal_stack",
    "logic_metal_stack",
]
