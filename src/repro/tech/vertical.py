"""Electrical models of vertical and packaging elements.

Each element is reduced to the resistance a DC solve needs:

* PG TSVs (through-silicon vias) including their microbump,
* dedicated via-last TSVs (paper section 3.1: lower resistance, but they
  penetrate the logic die),
* C4 bumps between the bottom die and the package,
* F2F bond vias (dense face-to-face connections enabling PDN sharing,
  paper section 4.2),
* the redistribution layer (RDL, thick backside metal),
* backside bond wires (paper section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.metals import MetalLayer, RouteDirection


def _require_positive(name: str, value: float) -> None:
    if value <= 0.0:
        raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class TSVTech:
    """A PG through-silicon via plus its microbump.

    Parameters
    ----------
    resistance:
        Series resistance of one TSV + microbump, ohm.
    keepout:
        Keep-out-zone half-width around the TSV, mm (cost/floorplan impact,
        paper section 3.3: "large keep-out zones must be inserted around
        TSVs to avoid stress and noise issues").
    via_last:
        Via-last (dedicated) TSVs have lower resistance because they are
        fabricated after BEOL and can be larger (paper section 3.1).
    """

    resistance: float
    keepout: float = 0.02
    via_last: bool = False

    def __post_init__(self) -> None:
        _require_positive("TSV resistance", self.resistance)
        if self.keepout < 0.0:
            raise ValueError(f"keepout must be >= 0, got {self.keepout}")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def series(self, count: int) -> float:
        """Resistance of ``count`` TSVs stacked in series (B2B bonding)."""
        if count < 1:
            raise ValueError("series TSV count must be >= 1")
        return self.resistance * count


@dataclass(frozen=True)
class C4Tech:
    """C4 bump (or BGA ball) field connecting a die to the package.

    ``pitch`` controls how many bumps fit and therefore the TSV alignment
    study (paper section 3.2).  ``detour_res_per_mm`` models the lateral
    resistance of the escape routing between a misaligned TSV landing and
    its nearest bump.
    """

    resistance: float
    pitch: float
    detour_res_per_mm: float

    def __post_init__(self) -> None:
        _require_positive("C4 resistance", self.resistance)
        _require_positive("C4 pitch", self.pitch)
        if self.detour_res_per_mm < 0.0:
            raise ValueError("detour resistance must be >= 0")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def detour_resistance(self, distance: float) -> float:
        """Extra series resistance for a TSV landing ``distance`` mm from
        its nearest C4 bump (Manhattan distance)."""
        if distance < 0.0:
            raise ValueError("distance must be >= 0")
        return self.detour_res_per_mm * distance


@dataclass(frozen=True)
class F2FViaTech:
    """Face-to-face bond vias.

    F2F vias "can be placed almost everywhere" (paper section 4.2); the
    model is a per-area via density with a per-via resistance, reduced to
    an area conductance density (S/mm^2) so meshes of any pitch see the
    same total coupling.
    """

    via_resistance: float
    density: float  # vias per mm^2

    def __post_init__(self) -> None:
        _require_positive("F2F via resistance", self.via_resistance)
        _require_positive("F2F via density", self.density)

    @property
    def conductance_per_mm2(self) -> float:
        return self.density / self.via_resistance


@dataclass(frozen=True)
class RDLTech:
    """Redistribution layer: thick backside metal.

    "Unlike routing layers fabricated using the silicon process, the RDL is
    much thicker and allows non-manhattan routing.  With a much lower
    resistivity ... it is suitable to deliver power to the edge of DRAM
    chips at lower cost" (paper section 3.3).  The RDL still adds series
    resistance compared to direct edge TSVs, which is why option (c) in
    Table 2 loses to option (a).
    """

    sheet_res: float
    usage: float = 0.6  # RDL is mostly power; fixed, not a design knob

    def __post_init__(self) -> None:
        _require_positive("RDL sheet resistance", self.sheet_res)
        if not 0.0 < self.usage <= 1.0:
            raise ValueError(f"RDL usage must be in (0, 1], got {self.usage}")

    def as_layer(self) -> MetalLayer:
        """The RDL viewed as a mesh layer (non-manhattan => isotropic)."""
        return MetalLayer(
            name="RDL", sheet_res=self.sheet_res, direction=RouteDirection.BOTH
        )


@dataclass(frozen=True)
class WireBondTech:
    """Backside bond wires from the package to the top die (section 4.1).

    ``group_resistance`` is the lumped resistance of one edge group of
    parallel bond wires (wire + backside pad + PG TSV entry), and
    ``groups_per_edge`` how many such groups are distributed along each die
    edge.
    """

    group_resistance: float
    groups_per_edge: int = 4

    def __post_init__(self) -> None:
        _require_positive("wire bond group resistance", self.group_resistance)
        if self.groups_per_edge < 1:
            raise ValueError("groups_per_edge must be >= 1")

    @property
    def group_conductance(self) -> float:
        return 1.0 / self.group_resistance
