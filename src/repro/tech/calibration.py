"""Calibrated technology constants.

These are the only free parameters of the physical model.  The paper's
absolute IR-drop numbers depend on proprietary 20nm-class DRAM and 28nm
logic technology files; we recover equivalent behaviour by tuning the
constants below against the aggregate anchors the paper publishes
(DESIGN.md section 6): the 30.03 mV off-chip stacked-DDR3 baseline, the
64.41 mV coupled on-chip case, the 17.18 mV F2F case, the ~50 mV logic
self-noise, and the Table 2/3/5 trends.

Experiments never modify these values; design knobs (metal usage, TSV
count/style, bonding, ...) live in :class:`repro.pdn.config.PDNConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.metals import MetalLayer, MetalStack, RouteDirection
from repro.tech.vertical import C4Tech, F2FViaTech, RDLTech, TSVTech, WireBondTech


@dataclass(frozen=True)
class TechConstants:
    """All tunable physical constants in one place.

    Resistances are ohms (or ohm/square for sheets); lengths are mm.
    """

    # Supply voltage of both DRAM and logic dies (paper section 3.1 assumes
    # the same supply so the nets can couple).
    vdd: float = 1.5

    # --- DRAM metal sheet resistances (solid metal, ohm/sq) ---------------
    dram_m1_sheet: float = 1.01
    dram_m2_sheet: float = 0.675
    dram_m3_sheet: float = 0.27
    # M1 is signal-only; its PDN content is a fixed local grid fraction.
    dram_m1_local_usage: float = 0.06

    # --- Logic (T2 / HMC controller) metals -------------------------------
    # The 28nm logic stack is reduced to three effective PDN layers with
    # fixed usage (the logic PDN is not a design knob in the paper).
    logic_m1_sheet: float = 0.10
    logic_m2_sheet: float = 0.03
    logic_mtop_sheet: float = 0.012
    logic_m1_usage: float = 0.05
    logic_m2_usage: float = 0.10
    logic_mtop_usage: float = 0.12

    # --- Intra-die via stitching (between adjacent metal layers) ----------
    # Area conductance density, S/mm^2.  Global stitching is sparse; the
    # local PDN inside blocks stitches more densely.
    via_density_global: float = 60.0
    # Logic dies funnel current through a tall, congested via stack from
    # the bump-fed top metals to the device layer; the effective areal
    # conductance is far lower than the DRAM's short 3-layer stack.
    via_density_logic: float = 4.0
    via_density_local: float = 700.0

    # --- On-chip escape routing ----------------------------------------------
    # Detour resistance per mm for a TSV landing that misses its C4 bump
    # on the LOGIC die: the current squeezes through congested thin lower
    # metals around other macros, far worse than package-level escape
    # (which uses tech.c4.detour_res_per_mm).  This is what makes the
    # paper's careful C4-TSV alignment worth up to 51.5% on-chip
    # (section 3.2).
    logic_escape_res_per_mm: float = 60.0

    # --- Through-logic landing ----------------------------------------------
    # Series resistance per TSV when DRAM power crosses the host logic die
    # without dedicated TSVs: backside landing pad, logic-TSV keep-out
    # crowding and the tie-in to the logic grid (section 3.1).
    logic_landing_res: float = 1.7

    # --- Vertical / packaging elements ------------------------------------
    tsv: TSVTech = field(default_factory=lambda: TSVTech(resistance=0.116))
    dedicated_tsv: TSVTech = field(
        default_factory=lambda: TSVTech(resistance=0.08, via_last=True)
    )
    c4: C4Tech = field(
        default_factory=lambda: C4Tech(
            resistance=0.010, pitch=0.20, detour_res_per_mm=0.45
        )
    )
    f2f: F2FViaTech = field(
        default_factory=lambda: F2FViaTech(via_resistance=0.01, density=64.0)
    )
    rdl: RDLTech = field(default_factory=lambda: RDLTech(sheet_res=0.18))
    wirebond: WireBondTech = field(
        default_factory=lambda: WireBondTech(group_resistance=0.32, groups_per_edge=4)
    )

    # --- Board / package spreading -----------------------------------------
    # Resistance from the ideal regulator to the bump field, shared by all
    # bumps (board plane + package plane).  Small but nonzero: it is what
    # couples the logic noise into the DRAM even before they share a PDN.
    package_spreading_res: float = 0.0003

    # --- Mesh discretization ------------------------------------------------
    # Production node pitch (paper's R-Mesh keeps the resistor count low);
    # the golden reference solver refines this (see rmesh.reference).
    mesh_pitch: float = 0.40
    reference_pitch: float = 0.13


#: Module-level default constants; experiments import and share this.
DEFAULT_TECH = TechConstants()


def dram_metal_stack(tech: TechConstants = DEFAULT_TECH) -> MetalStack:
    """The 3-layer DRAM metal stack (paper section 4.2).

    M1 signal (local PDN only), M2 mixed signal/power routed vertically,
    M3 power routed horizontally.
    """
    return MetalStack(
        layers=(
            MetalLayer("M1", tech.dram_m1_sheet, RouteDirection.BOTH, power_capable=False),
            MetalLayer("M2", tech.dram_m2_sheet, RouteDirection.VERTICAL),
            MetalLayer("M3", tech.dram_m3_sheet, RouteDirection.HORIZONTAL),
        )
    )


def logic_metal_stack(tech: TechConstants = DEFAULT_TECH) -> MetalStack:
    """The logic die stack reduced to three effective PDN layers."""
    return MetalStack(
        layers=(
            MetalLayer("ML1", tech.logic_m1_sheet, RouteDirection.BOTH),
            MetalLayer("ML2", tech.logic_m2_sheet, RouteDirection.VERTICAL),
            MetalLayer("MTOP", tech.logic_mtop_sheet, RouteDirection.HORIZONTAL),
        )
    )
