"""Metal layer and metal stack descriptions.

Traditional DRAM technology uses three metal layers (paper section 4.2):
M1 for signal routing, M2 for mixed signal/power routing, and M3 for power
routing.  A layer is characterized by its sheet resistance and preferred
routing direction; the PDN usage fraction (how much of the layer's area is
VDD straps) is a *design* parameter and lives in
:class:`repro.pdn.config.PDNConfig`, not here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class RouteDirection(enum.Enum):
    """Preferred routing direction of a metal layer.

    A layer routed horizontally carries current well along x but relies on
    the orthogonal layer (through vias) for y transport; ``BOTH`` models
    thick top metals and the RDL where non-preferred or even non-manhattan
    routing is allowed (paper section 3.3).
    """

    HORIZONTAL = "h"
    VERTICAL = "v"
    BOTH = "both"

    def direction_weights(self) -> Tuple[float, float]:
        """(x_weight, y_weight) conductance anisotropy factors.

        A strongly directional layer still has some cross-direction
        conductance through jogs and via stitching; 0.15 is a conventional
        figure for strap-style PDNs.
        """
        if self is RouteDirection.HORIZONTAL:
            return 1.0, 0.15
        if self is RouteDirection.VERTICAL:
            return 0.15, 1.0
        return 1.0, 1.0


@dataclass(frozen=True)
class MetalLayer:
    """One metal layer of a process stack.

    Parameters
    ----------
    name:
        Layer name, e.g. ``"M2"`` or ``"RDL"``.
    sheet_res:
        Sheet resistance of solid metal, ohm/square.
    direction:
        Preferred routing direction.
    power_capable:
        Whether the layer may carry PDN straps at all.  M1 in DRAM is
        signal-only (paper section 4.2), so its PDN usage is pinned to a
        small local-grid value regardless of configuration.
    """

    name: str
    sheet_res: float
    direction: RouteDirection
    power_capable: bool = True

    def __post_init__(self) -> None:
        if self.sheet_res <= 0.0:
            raise ValueError(f"sheet resistance must be positive, got {self.sheet_res}")

    def effective_sheet_res(self, usage: float) -> float:
        """Sheet resistance of the PDN on this layer at a given usage.

        ``usage`` is the area fraction of the layer devoted to VDD straps
        (paper section 2.2: "PDN wire resistance is modeled depending on
        the metal layer usage which is defined as the area percentage of
        VDD PDN on one layer").  A strap PDN occupying fraction ``u`` of
        the layer behaves like a solid sheet with resistance
        ``rho_sheet / u``.
        """
        if not 0.0 < usage <= 1.0:
            raise ValueError(f"usage must be in (0, 1], got {usage}")
        return self.sheet_res / usage


@dataclass(frozen=True)
class MetalStack:
    """An ordered list of metal layers, bottom (device side) first."""

    layers: Tuple[MetalLayer, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a metal stack needs at least one layer")
        names = [layer.name for layer in self.layers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate layer names in stack: {names}")

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def names(self) -> List[str]:
        return [layer.name for layer in self.layers]

    @property
    def top(self) -> MetalLayer:
        """The face (bonding-side) layer."""
        return self.layers[-1]

    @property
    def bottom(self) -> MetalLayer:
        """The device-side layer where current loads attach."""
        return self.layers[0]

    def layer_index(self, name: str) -> int:
        """Index of the layer called ``name``."""
        for idx, layer in enumerate(self.layers):
            if layer.name == name:
                return idx
        raise KeyError(f"no layer named {name!r} in stack {self.names}")

    def by_name(self) -> Dict[str, MetalLayer]:
        """Mapping from layer name to layer."""
        return {layer.name: layer for layer in self.layers}
