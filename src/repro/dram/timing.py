"""DRAM timing parameters.

The paper's memory controller simulator models "major DRAM read operation
timing parameters such as tCL, tRCD, tRP, tRAS, and tCCD" (section 2.3),
plus the JEDEC bank-activation limits tRRD and tFAW that the *standard*
read policy uses in place of real IR-drop knowledge (section 5.2: "a tRRD
of 8 and a tFAW of 32").

All values are in DRAM clock cycles; ``clock_mhz`` anchors them to wall
time.  Stacked DDR3 at 1600 Mbps/pin runs an 800 MHz clock (DDR), so the
paper's 109.3 us standard-policy runtime equals 87,440 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: The commands the controller can issue, in the order the per-command
#: tables report them.  ``RD``/``WR`` are column commands; ``REF`` is the
#: per-die all-bank refresh.
COMMANDS: Tuple[str, ...] = ("ACT", "PRE", "RD", "WR", "REF")


@dataclass(frozen=True)
class CommandTiming:
    """Timing of one command, resolved from :class:`TimingParams`.

    ``latency`` is the cycle count until the command's effect completes
    (row open for ACT, bank idle for PRE, burst end for RD/WR, bank
    available for REF); ``bus_cycles`` is the data-bus occupancy (zero
    for non-column commands).  ``min_gap`` is the minimum spacing to the
    next *same* command on the same resource (tCCD for column commands).
    """

    name: str
    latency: int
    bus_cycles: int = 0
    min_gap: int = 1


@dataclass(frozen=True)
class TimingParams:
    """Read-path timing of one DRAM technology (cycles)."""

    clock_mhz: float
    tCL: int  # CAS latency: READ to first data
    tRCD: int  # ACT to READ
    tRP: int  # PRE to ACT
    tRAS: int  # ACT to PRE (minimum row-open time)
    tCCD: int  # READ to READ, same channel
    tRRD: int  # ACT to ACT (standard policy only)
    tFAW: int  # four-activate window (standard policy only)
    tWR: int  # write-back recovery before closing a row (section 2.2:
    #   "each row activation contains a write-back operation when the
    #   row is closed")
    burst_cycles: int  # data-bus occupancy of one read burst
    tCWL: int = 8  # write latency: WRITE command to first data
    tREFI: int = 6240  # average refresh interval (7.8 us at 800 MHz)
    tRFC: int = 208  # refresh cycle time (260 ns for a 4 Gb die)

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ConfigurationError("clock must be positive")
        for name in ("tCL", "tRCD", "tRP", "tRAS", "tCCD", "tRRD", "tFAW", "tWR", "burst_cycles", "tCWL", "tREFI", "tRFC"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1 cycle")
        if self.tRAS < self.tRCD:
            raise ConfigurationError("tRAS must cover at least tRCD")

    @property
    def tRC(self) -> int:
        """Full row cycle: ACT to next ACT on the same bank."""
        return self.tRAS + self.tRP

    def cycles_to_us(self, cycles: int) -> float:
        """Convert a cycle count to microseconds."""
        return cycles / self.clock_mhz

    def command_table(self) -> Dict[str, CommandTiming]:
        """Explicit per-command timing table (ACT/PRE/RD/WR/REF).

        One authoritative place for the per-command latencies that used
        to live as scattered ``tXX`` reads across the bank FSM, the
        channel bus, and the simulator; the event-driven engine and the
        per-command energy ledger both resolve commands through it.
        """
        return {
            "ACT": CommandTiming("ACT", latency=self.tRCD, min_gap=self.tRRD),
            "PRE": CommandTiming("PRE", latency=self.tRP),
            "RD": CommandTiming(
                "RD",
                latency=self.tCL + self.burst_cycles,
                bus_cycles=self.burst_cycles,
                min_gap=self.tCCD,
            ),
            "WR": CommandTiming(
                "WR",
                latency=self.tCWL + self.burst_cycles,
                bus_cycles=self.burst_cycles,
                min_gap=self.tCCD,
            ),
            "REF": CommandTiming("REF", latency=self.tRFC, min_gap=self.tREFI),
        }

    def command_duration_us(self, command: str) -> float:
        """Wall-time footprint of one command (for energy accounting)."""
        table = self.command_table()
        if command not in table:
            raise ConfigurationError(
                f"unknown DRAM command {command!r}", known=COMMANDS
            )
        return self.cycles_to_us(table[command].latency)

    @classmethod
    def ddr3_1600(cls) -> "TimingParams":
        """DDR3-1600: 800 MHz clock, BL8 (4 clock data), JEDEC-typical
        latencies, and the paper's tRRD=8 / tFAW=32."""
        return cls(
            clock_mhz=800.0,
            tCL=11,
            tRCD=11,
            tRP=11,
            tRAS=28,
            tCCD=4,
            tRRD=8,
            tFAW=32,
            tWR=12,
            burst_cycles=4,
            tCWL=8,
            tREFI=6240,
            tRFC=208,
        )

    @classmethod
    def wideio_200(cls) -> "TimingParams":
        """Wide I/O SDR-200: 200 MHz clock, BL4 over a 128b channel."""
        return cls(
            clock_mhz=200.0,
            tCL=3,
            tRCD=6,
            tRP=6,
            tRAS=12,
            tCCD=2,
            tRRD=2,
            tFAW=10,
            tWR=4,
            burst_cycles=2,
            tCWL=2,
            tREFI=1560,  # 7.8 us at 200 MHz
            tRFC=52,
        )

    @classmethod
    def hmc_2500(cls) -> "TimingParams":
        """HMC-class: 1250 MHz internal clock, short bursts per vault."""
        return cls(
            clock_mhz=1250.0,
            tCL=17,
            tRCD=17,
            tRP=17,
            tRAS=42,
            tCCD=4,
            tRRD=8,
            tFAW=32,
            tWR=15,
            burst_cycles=4,
            tCWL=12,
            tREFI=9750,  # 7.8 us at 1250 MHz
            tRFC=325,
        )
