"""Channel command/data bus model.

Each memory channel has one command bus (one command per cycle) and one
data bus shared by all dies of the stack on that channel.  A read burst
occupies the data bus for ``burst_cycles`` starting ``tCL`` after the READ
command; zero-bubble interleaving corresponds to back-to-back bursts
(tCCD == burst_cycles for DDR3 BL8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import TimingParams
from repro.errors import SimulationError


@dataclass
class ChannelBus:
    """Bus occupancy bookkeeping for one channel."""

    channel: int
    timing: TimingParams
    data_free_cycle: int = 0  # first cycle the data bus is free
    command_free_cycle: int = 0
    bursts: int = 0

    def can_issue_command(self, now: int) -> bool:
        """Is the 1-command/cycle command bus free this cycle?"""
        return now >= self.command_free_cycle

    def issue_command(self, now: int) -> None:
        """Occupy the command bus for one cycle (ACT/PRE/REF)."""
        if not self.can_issue_command(now):
            raise SimulationError(
                f"channel {self.channel}: command bus busy at {now}"
            )
        self.command_free_cycle = now + 1

    def can_issue_read(self, now: int) -> bool:
        """Would a READ issued now find the data bus free for its burst?"""
        return (
            self.can_issue_command(now)
            and now + self.timing.tCL >= self.data_free_cycle
        )

    def issue_read(self, now: int) -> int:
        """Occupy the buses for one read; returns the burst-end cycle."""
        if not self.can_issue_read(now):
            raise SimulationError(f"channel {self.channel}: data bus conflict at {now}")
        self.issue_command(now)
        start = now + self.timing.tCL
        self.data_free_cycle = start + self.timing.burst_cycles
        self.bursts += 1
        return self.data_free_cycle

    def can_issue_write(self, now: int) -> bool:
        """Would a WRITE issued now find the data bus free for its burst?"""
        return (
            self.can_issue_command(now)
            and now + self.timing.tCWL >= self.data_free_cycle
        )

    def issue_write(self, now: int) -> int:
        """Occupy the buses for one write; returns the burst-end cycle."""
        if not self.can_issue_write(now):
            raise SimulationError(f"channel {self.channel}: data bus conflict at {now}")
        self.issue_command(now)
        start = now + self.timing.tCWL
        self.data_free_cycle = start + self.timing.burst_cycles
        self.bursts += 1
        return self.data_free_cycle

    def next_data_slot(self, now: int) -> int:
        """Earliest cycle >= now at which a READ would clear the data bus."""
        return max(now, self.data_free_cycle - self.timing.tCL)

    def utilization(self, total_cycles: int) -> float:
        """Fraction of cycles the data bus carried bursts."""
        if total_cycles <= 0:
            return 0.0
        return self.bursts * self.timing.burst_cycles / total_cycles
