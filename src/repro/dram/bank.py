"""Per-bank state machine.

A bank cycles IDLE -> ACTIVATING -> ACTIVE -> PRECHARGING -> IDLE.  The
simulator is cycle-accurate: every transition records the cycle at which
the next operation becomes legal, and ``can_*`` predicates ask whether an
operation may issue *now*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.dram.timing import TimingParams
from repro.errors import SimulationError


class BankState(enum.Enum):
    IDLE = "idle"
    ACTIVATING = "activating"  # row being opened (ACT issued, tRCD running)
    ACTIVE = "active"  # row open, reads may issue
    PRECHARGING = "precharging"  # tRP running


@dataclass
class Bank:
    """One DRAM bank of one die."""

    die: int
    bank_id: int
    timing: TimingParams
    state: BankState = BankState.IDLE
    open_row: Optional[int] = None
    act_cycle: int = -(10**9)  # when the current row's ACT issued
    ready_cycle: int = 0  # when the next op of the current state is legal
    last_read_cycle: int = -(10**9)  # last column op (read or write)
    reads_served: int = 0
    writes_served: int = 0

    # -- predicates -----------------------------------------------------------

    def is_active(self) -> bool:
        """Active for IR purposes: the row is open or being opened."""
        return self.state in (BankState.ACTIVATING, BankState.ACTIVE)

    def sync(self, now: int) -> None:
        """Advance time-based transitions (ACTIVATING->ACTIVE, PRECHARGING->IDLE)."""
        if self.state is BankState.ACTIVATING and now >= self.ready_cycle:
            self.state = BankState.ACTIVE
        elif self.state is BankState.PRECHARGING and now >= self.ready_cycle:
            self.state = BankState.IDLE

    def can_activate(self, now: int) -> bool:
        """May an ACT issue now (bank idle, tRP elapsed)?"""
        self.sync(now)
        return self.state is BankState.IDLE and now >= self.ready_cycle

    def can_read(self, now: int, row: int) -> bool:
        """May a READ to ``row`` issue now (row open, tRCD/tCCD met)?"""
        self.sync(now)
        return (
            self.state is BankState.ACTIVE
            and self.open_row == row
            and now >= self.ready_cycle
            and now >= self.last_read_cycle + self.timing.tCCD
        )

    def can_write(self, now: int, row: int) -> bool:
        """Same column-command gating as reads (tCCD between column ops)."""
        return self.can_read(now, row)

    def can_precharge(self, now: int) -> bool:
        """May the open row close now (tRAS and write-back done)?"""
        self.sync(now)
        if self.state is not BankState.ACTIVE:
            return False
        # tRAS from ACT, and the row's write-back after the last read must
        # finish before the row can close (tWR; paper section 2.2).
        return (
            now >= self.act_cycle + self.timing.tRAS
            and now >= self.last_read_cycle + self.timing.tWR
        )

    def next_interesting_cycle(self, now: int) -> Optional[int]:
        """Earliest future cycle at which this bank's options change
        (used by the simulator's event skipping)."""
        self.sync(now)
        candidates: List[int] = []
        if self.state in (BankState.ACTIVATING, BankState.PRECHARGING):
            candidates.append(self.ready_cycle)
        elif self.state is BankState.ACTIVE:
            candidates.append(max(self.ready_cycle, self.last_read_cycle + self.timing.tCCD))
            candidates.append(self.act_cycle + self.timing.tRAS)
            candidates.append(self.last_read_cycle + self.timing.tWR)
        future = [c for c in candidates if c > now]
        return min(future) if future else None

    # -- operations ---------------------------------------------------------------

    def activate(self, now: int, row: int) -> None:
        """Open ``row``; the bank becomes readable after tRCD."""
        if not self.can_activate(now):
            raise SimulationError(
                f"die {self.die} bank {self.bank_id}: illegal ACT at {now} "
                f"(state {self.state.value})"
            )
        self.state = BankState.ACTIVATING
        self.open_row = row
        self.act_cycle = now
        self.ready_cycle = now + self.timing.tRCD

    def read(self, now: int, row: int) -> int:
        """Issue a read; returns the cycle at which the data burst ends."""
        if not self.can_read(now, row):
            raise SimulationError(
                f"die {self.die} bank {self.bank_id}: illegal READ at {now} "
                f"(state {self.state.value}, row {self.open_row} vs {row})"
            )
        self.last_read_cycle = now
        self.reads_served += 1
        return now + self.timing.tCL + self.timing.burst_cycles

    def write(self, now: int, row: int) -> int:
        """Issue a write; returns the cycle at which the data burst ends.

        Writes share the column-command path with reads but use the write
        latency tCWL; the tWR window in :meth:`can_precharge` then holds
        the row open until the array restore completes.
        """
        if not self.can_write(now, row):
            raise SimulationError(
                f"die {self.die} bank {self.bank_id}: illegal WRITE at {now} "
                f"(state {self.state.value}, row {self.open_row} vs {row})"
            )
        self.last_read_cycle = now  # shared column-op timestamp (tCCD/tWR)
        self.writes_served += 1
        return now + self.timing.tCWL + self.timing.burst_cycles

    def precharge(self, now: int) -> None:
        """Close the open row; the bank idles after tRP."""
        if not self.can_precharge(now):
            raise SimulationError(
                f"die {self.die} bank {self.bank_id}: illegal PRE at {now}"
            )
        self.state = BankState.PRECHARGING
        self.open_row = None
        self.ready_cycle = now + self.timing.tRP

    def block_for_refresh(self, now: int) -> int:
        """Hold the (idle) bank unavailable while its die refreshes.

        Returns the cycle at which the bank becomes usable again
        (``now`` + tRFC).  Refresh is a die-level command: the
        per-die scheduling (tREFI deadlines, all-banks-idle gating)
        lives in the controller engine; the bank only records the
        blackout.
        """
        blocked = now + self.timing.tRFC
        self.ready_cycle = max(self.ready_cycle, blocked)
        return blocked
