"""DRAM device models: timing parameters, bank FSMs, channel buses."""

from repro.dram.timing import COMMANDS, CommandTiming, TimingParams
from repro.dram.bank import Bank, BankState
from repro.dram.channel import ChannelBus

__all__ = [
    "COMMANDS",
    "CommandTiming",
    "TimingParams",
    "Bank",
    "BankState",
    "ChannelBus",
]
