"""Benchmark registry: every ``benchmarks/bench_*.py`` declares itself.

A bench registers by decorating its existing pytest test function with
:func:`register_bench` -- the decorator is purely additive (it returns
the function unchanged), so pytest collection and the pytest-benchmark
harness keep working exactly as before.  The unified runner
(:mod:`repro.bench.runner`) then drives the *same* function outside
pytest by inspecting its signature:

* a ``run_paper_experiment`` parameter gets an instrumented experiment
  runner (the contract of the ``benchmarks/conftest.py`` fixture),
* a ``benchmark`` parameter gets a pedantic-compatible shim,
* a zero-argument function is called directly.

Discovery (:func:`discover`) imports every ``bench_*.py`` under the
repository's ``benchmarks/`` directory, firing the decorators.  The
bench scripts live outside the installed package on purpose -- they are
repository artifacts, like the paper tables they check -- so discovery
locates them relative to the source tree (or ``REPRO_BENCH_DIR``).
"""

from __future__ import annotations

import importlib.util
import inspect
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError

#: Environment override for the bench-script directory (CI, odd layouts).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: How the runner must invoke a registered function.
HARNESS_EXPERIMENT = "experiment"  # fn(run_paper_experiment)
HARNESS_PEDANTIC = "pedantic"  # fn(benchmark)  (pytest-benchmark shim)
HARNESS_PLAIN = "plain"  # fn()


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: a name, a callable, and how to drive it."""

    name: str
    func: Callable
    heavy: bool = False
    experiment_id: Optional[str] = None
    source: str = ""
    tags: tuple = field(default_factory=tuple)

    @property
    def harness(self) -> str:
        """Infer the invocation style from the function's first parameter."""
        params = list(inspect.signature(self.func).parameters)
        if not params:
            return HARNESS_PLAIN
        if params[0] == "run_paper_experiment":
            return HARNESS_EXPERIMENT
        if params[0] == "benchmark":
            return HARNESS_PEDANTIC
        raise ConfigurationError(
            f"bench {self.name!r}: cannot drive function with first "
            f"parameter {params[0]!r} (expected run_paper_experiment, "
            "benchmark, or no parameters)"
        )


#: name -> spec.  Populated by the decorators below / :func:`discover`.
REGISTRY: Dict[str, BenchSpec] = {}


def register_bench(
    name: str,
    heavy: bool = False,
    experiment_id: Optional[str] = None,
    tags: tuple = (),
):
    """Decorator adding a bench function to the registry.

    ``heavy`` excludes the bench from ``--smoke`` suites (multi-second
    controller sims and full sweeps).  ``experiment_id`` links the bench
    to a :mod:`repro.experiments` driver for anchor extraction; it
    defaults to ``name`` for experiment-harness benches.

    Re-registering the same name from the same source file replaces the
    entry (pytest and the discovery loader may both import a module);
    the same name from a *different* file is a collision and raises.
    """

    def deco(func: Callable):
        source = getattr(func, "__module__", "") or ""
        try:
            source = inspect.getfile(func)
        except (TypeError, OSError):
            pass
        existing = REGISTRY.get(name)
        if existing is not None and Path(existing.source).name != Path(source).name:
            raise ConfigurationError(
                f"duplicate bench name {name!r}: already registered from "
                f"{existing.source}, re-registered from {source}"
            )
        REGISTRY[name] = BenchSpec(
            name=name,
            func=func,
            heavy=heavy,
            experiment_id=experiment_id,
            source=source,
            tags=tuple(tags),
        )
        return func

    return deco


def benchmarks_dir(explicit=None) -> Path:
    """Locate the repository's ``benchmarks/`` directory.

    Resolution order: explicit argument, ``REPRO_BENCH_DIR``, the
    source-tree layout (``src/repro/bench`` -> repo root), then the
    current working directory and its parents.
    """
    candidates: List[Path] = []
    if explicit is not None:
        candidates.append(Path(explicit))
    env = os.environ.get(BENCH_DIR_ENV)
    if env:
        candidates.append(Path(env))
    # src/repro/bench/registry.py -> src/repro/bench -> src/repro -> src -> root
    candidates.append(Path(__file__).resolve().parents[3] / "benchmarks")
    cwd = Path.cwd().resolve()
    candidates.extend(p / "benchmarks" for p in (cwd, *cwd.parents))
    for cand in candidates:
        if cand.is_dir() and list(cand.glob("bench_*.py")):
            return cand
    raise ConfigurationError(
        "cannot locate the benchmarks/ directory; set "
        f"{BENCH_DIR_ENV} or pass an explicit path "
        f"(tried {[str(c) for c in candidates[:3]]}...)"
    )


def discover(bench_dir=None) -> Dict[str, BenchSpec]:
    """Import every ``bench_*.py`` so registrations fire; return the registry.

    Modules are loaded once per process under a ``repro_bench_cases.``
    alias; repeated discovery is a cheap no-op.
    """
    directory = benchmarks_dir(bench_dir)
    # Bench scripts may import their conftest helpers (``from conftest
    # import fast_mode``), which pytest resolves via rootdir insertion;
    # mirror that here for the duration of the load.
    sys_path_entry = str(directory)
    inserted = sys_path_entry not in sys.path
    if inserted:
        sys.path.insert(0, sys_path_entry)
    try:
        for path in sorted(directory.glob("bench_*.py")):
            mod_name = f"repro_bench_cases.{path.stem}"
            if mod_name in sys.modules:
                continue
            spec = importlib.util.spec_from_file_location(mod_name, path)
            if spec is None or spec.loader is None:  # pragma: no cover
                raise ConfigurationError(f"cannot load bench module {path}")
            module = importlib.util.module_from_spec(spec)
            sys.modules[mod_name] = module
            try:
                spec.loader.exec_module(module)
            except BaseException:
                del sys.modules[mod_name]
                raise
    finally:
        if inserted and sys_path_entry in sys.path:
            sys.path.remove(sys_path_entry)
    return REGISTRY


def select(
    names=None,
    smoke: bool = True,
    registry: Optional[Dict[str, BenchSpec]] = None,
) -> List[BenchSpec]:
    """Pick the specs a suite run should execute, in name order.

    ``names`` (when given) wins and may include heavy benches; otherwise
    ``smoke`` drops everything tagged heavy.
    """
    registry = REGISTRY if registry is None else registry
    if names:
        missing = [n for n in names if n not in registry]
        if missing:
            raise ConfigurationError(
                f"unknown bench name(s) {missing}; registered: "
                f"{sorted(registry)}"
            )
        return [registry[n] for n in sorted(names)]
    specs = [s for s in registry.values() if not (smoke and s.heavy)]
    return sorted(specs, key=lambda s: s.name)
