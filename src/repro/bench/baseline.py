"""Baseline store and noise-aware regression comparator.

The committed baseline (``benchmarks/BASELINE.json``) is the blessed
suite record CI gates against; the ``BENCH_*.json`` files at the repo
root are the longitudinal trajectory that widens the comparator's
timing sample.  The two signals are treated differently:

* **perf** -- wall times are noisy, so the tolerance band is
  ``max(rel_tol * median, mad_k * MAD)`` over the baseline + trajectory
  samples (median absolute deviation is robust to the odd cold-cache
  outlier).  Sub-``min_wall_s`` benches are never perf-gated: at that
  scale the measurement is pure jitter.
* **physics** -- IR numbers and paper-anchor deviations are
  deterministic re-runs of the same model, so they compare with tight
  epsilons: any real change is a model change and must be blessed
  explicitly (``repro bench --update-baseline``).

Verdicts per bench: ``ok`` / ``perf_regression`` / ``accuracy_drift`` /
``new_benchmark`` (plus ``failed`` when the bench itself errored).  The
suite verdict is the worst of its benches.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.bench.record import SuiteRecord, load_record, load_trajectory

#: Verdict severity, mildest first; the suite takes the worst.
VERDICT_ORDER = (
    "ok",
    "new_benchmark",
    "perf_regression",
    "accuracy_drift",
    "failed",
)

#: Default committed-baseline location relative to the repo root.
BASELINE_RELPATH = Path("benchmarks") / "BASELINE.json"


@dataclass(frozen=True)
class Thresholds:
    """Comparator tolerances; see the module docstring for rationale."""

    #: Allowed fractional slowdown vs the trajectory median (0.5 = +50%).
    perf_rel_tol: float = 0.5
    #: Noise band width in median-absolute-deviations.
    mad_k: float = 4.0
    #: Benches faster than this are never perf-gated (seconds).
    min_wall_s: float = 0.1
    #: Max allowed |delta| in the worst DRAM IR (mV); deterministic model.
    ir_abs_mv: float = 1e-6
    #: Max allowed |delta| in an anchor's deviation-% (percentage points).
    anchor_pct_tol: float = 1e-6
    #: Anchor metrics that are wall-clock-derived (fig4's reference
    #: ``speedup``), matched by substring: perf-noisy, so never treated
    #: as physics drift.
    noisy_metrics: tuple = ("speedup",)


@dataclass
class BenchVerdict:
    """Comparator output for one bench."""

    name: str
    status: str
    detail: str = ""
    wall_s: float = 0.0
    baseline_wall_s: Optional[float] = None
    tol_s: Optional[float] = None
    max_ir_mv: Optional[float] = None
    baseline_max_ir_mv: Optional[float] = None


@dataclass
class SuiteComparison:
    """All verdicts plus the suite-level worst-case status."""

    verdicts: List[BenchVerdict] = field(default_factory=list)

    @property
    def status(self) -> str:
        worst = "ok"
        for v in self.verdicts:
            if VERDICT_ORDER.index(v.status) > VERDICT_ORDER.index(worst):
                worst = v.status
        return worst

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "new_benchmark")

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.verdicts:
            out[v.status] = out.get(v.status, 0) + 1
        return out

    def by_status(self, status: str) -> List[BenchVerdict]:
        return [v for v in self.verdicts if v.status == status]


def _timing_samples(
    name: str, baseline: SuiteRecord, trajectory: Sequence[SuiteRecord]
) -> List[float]:
    """Every historical wall time for ``name`` (repeats included)."""
    samples: List[float] = []
    for record in (*trajectory, baseline):
        entry = record.entry(name)
        if entry is not None and entry.status == "ok":
            samples.extend(entry.wall_s_all or [entry.wall_s])
    return samples


def _anchor_key(anchor) -> tuple:
    return (anchor.get("row"), anchor.get("metric"))


def compare(
    current: SuiteRecord,
    baseline: SuiteRecord,
    trajectory: Sequence[SuiteRecord] = (),
    thresholds: Optional[Thresholds] = None,
) -> SuiteComparison:
    """Compare a fresh suite record against the baseline (+ trajectory)."""
    th = thresholds or Thresholds()
    comparison = SuiteComparison()
    for entry in current.benchmarks:
        verdict = BenchVerdict(
            name=entry.name,
            status="ok",
            wall_s=entry.wall_s,
            max_ir_mv=entry.max_ir_mv,
        )
        if entry.status == "failed":
            verdict.status = "failed"
            verdict.detail = entry.error or "bench raised"
            comparison.verdicts.append(verdict)
            continue
        base = baseline.entry(entry.name)
        if base is None or base.status != "ok":
            verdict.status = "new_benchmark"
            verdict.detail = "no healthy baseline entry"
            comparison.verdicts.append(verdict)
            continue
        verdict.baseline_max_ir_mv = base.max_ir_mv

        # -- physics first: deterministic, so drift trumps perf noise ----
        drift = _accuracy_drift(entry, base, th)
        if drift:
            verdict.status = "accuracy_drift"
            verdict.detail = drift
            comparison.verdicts.append(verdict)
            continue

        # -- perf: noise-aware band over the historical samples ----------
        samples = _timing_samples(entry.name, baseline, trajectory)
        med = statistics.median(samples)
        mad = statistics.median(abs(s - med) for s in samples)
        tol = max(th.perf_rel_tol * med, th.mad_k * mad)
        verdict.baseline_wall_s = round(med, 6)
        verdict.tol_s = round(tol, 6)
        if (
            entry.wall_s > med + tol
            and entry.wall_s > th.min_wall_s
            and med > 0
        ):
            verdict.status = "perf_regression"
            verdict.detail = (
                f"{entry.wall_s:.3f}s vs median {med:.3f}s "
                f"(+{(entry.wall_s / med - 1) * 100:.0f}%, "
                f"tolerance +{tol:.3f}s over {len(samples)} samples)"
            )
        comparison.verdicts.append(verdict)
    return comparison


def _drift_attribution(entry, base) -> str:
    """Classify an IR drift as structural vs. numerical via plan hashes.

    Both records carry the plan hashes their bench solved; if the sets
    differ, the stack *structure* changed (planner/geometry edit); if
    they match, the plans are identical and the drift is numerical
    (assembler/solver arithmetic).  Records predating the field give no
    attribution.
    """
    ours = getattr(entry, "plan_hashes", None)
    theirs = getattr(base, "plan_hashes", None)
    if not ours or not theirs:
        return ""
    if set(ours) != set(theirs):
        return " [structural: stack plans changed]"
    return " [numerical: identical stack plans]"


def _accuracy_drift(entry, base, th: Thresholds) -> str:
    """Non-empty description when the physics numbers moved."""
    if entry.max_ir_mv is not None and base.max_ir_mv is not None:
        delta = abs(entry.max_ir_mv - base.max_ir_mv)
        if delta > th.ir_abs_mv:
            return (
                f"max IR {base.max_ir_mv:.6f} -> {entry.max_ir_mv:.6f} mV "
                f"(|delta| {delta:.2e} > {th.ir_abs_mv:.0e})"
                + _drift_attribution(entry, base)
            )
    base_anchors = {_anchor_key(a): a for a in base.anchors}
    for anchor in entry.anchors:
        prev = base_anchors.get(_anchor_key(anchor))
        if prev is None:
            continue  # new row/metric: a model extension, not drift
        metric = str(anchor.get("metric", ""))
        if any(noisy in metric for noisy in th.noisy_metrics):
            continue
        cur_dev = anchor.get("deviation_pct")
        prev_dev = prev.get("deviation_pct")
        if cur_dev is None or prev_dev is None:
            continue
        if abs(cur_dev - prev_dev) > th.anchor_pct_tol:
            return (
                f"anchor {anchor['row']}/{anchor['metric']} deviation "
                f"{prev_dev:+.4f}% -> {cur_dev:+.4f}%"
                + _drift_attribution(entry, base)
            )
    return ""


def baseline_path(root) -> Path:
    """The committed baseline location for a repository root."""
    return Path(root) / BASELINE_RELPATH


def load_baseline(path) -> Optional[SuiteRecord]:
    """The blessed record, or None when no baseline is committed yet."""
    path = Path(path)
    if not path.is_file():
        return None
    return load_record(path)


def update_baseline(record: SuiteRecord, path) -> Path:
    """Bless ``record`` as the new committed baseline."""
    return record.write(path)


def compare_against_root(
    current: SuiteRecord,
    root,
    thresholds: Optional[Thresholds] = None,
    exclude=(),
) -> Optional[SuiteComparison]:
    """Convenience: compare vs the committed baseline + root trajectory.

    Returns None when no baseline exists (first ever run).
    """
    baseline = load_baseline(baseline_path(root))
    if baseline is None:
        return None
    trajectory = load_trajectory(root, exclude=exclude)
    return compare(current, baseline, trajectory, thresholds)


def scaled(th: Thresholds, perf_rel_tol=None, ir_abs_mv=None) -> Thresholds:
    """A copy of ``th`` with selected tolerances overridden (CLI knobs)."""
    kwargs = {}
    if perf_rel_tol is not None:
        kwargs["perf_rel_tol"] = perf_rel_tol
    if ir_abs_mv is not None:
        kwargs["ir_abs_mv"] = ir_abs_mv
    return replace(th, **kwargs) if kwargs else th
