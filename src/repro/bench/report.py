"""Human-readable views of suite records and comparisons.

The tabular rendering lives in :mod:`repro.reporting` (the same
machinery that renders experiment tables and provenance sections); this
module shapes bench data into rows for it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bench.baseline import SuiteComparison
from repro.bench.record import SuiteRecord
from repro.obs.manifest import RunManifest
from repro.reporting import table_markdown

#: Marker rendered next to a non-ok verdict so greps find regressions.
_FLAGS = {
    "perf_regression": " !!",
    "accuracy_drift": " !!",
    "failed": " !!",
    "new_benchmark": " *",
}


def _fmt_s(value: Optional[float]) -> str:
    return f"{value:.3f}" if isinstance(value, (int, float)) else "--"


def _fmt_mv(value: Optional[float]) -> str:
    return f"{value:.2f}" if isinstance(value, (int, float)) else "--"


def comparison_rows(comparison: SuiteComparison) -> List[List[str]]:
    """One row per bench: verdict, timings, tolerance, IR values."""
    rows = []
    for v in comparison.verdicts:
        delta = ""
        if v.baseline_wall_s:
            delta = f"{(v.wall_s / v.baseline_wall_s - 1) * 100:+.0f}%"
        rows.append(
            [
                v.name,
                v.status + _FLAGS.get(v.status, ""),
                _fmt_s(v.baseline_wall_s),
                _fmt_s(v.wall_s),
                delta or "--",
                _fmt_s(v.tol_s),
                _fmt_mv(v.baseline_max_ir_mv),
                _fmt_mv(v.max_ir_mv),
            ]
        )
    return rows


def comparison_to_markdown(
    comparison: SuiteComparison, title: str = "Benchmark delta"
) -> str:
    """The delta table CI prints and archives next to the record."""
    headers = [
        "bench",
        "verdict",
        "base s",
        "now s",
        "delta",
        "tol s",
        "base mV",
        "now mV",
    ]
    lines = [f"## {title}", ""]
    lines.append(table_markdown(headers, comparison_rows(comparison)))
    counts = ", ".join(
        f"{status}: {n}" for status, n in sorted(comparison.counts().items())
    )
    lines += ["", f"**suite verdict: {comparison.status}** ({counts})"]
    for v in comparison.verdicts:
        if v.detail and v.status not in ("ok", "new_benchmark"):
            lines.append(f"- `{v.name}`: {v.detail}")
    return "\n".join(lines)


def record_summary(record: SuiteRecord) -> str:
    """One-paragraph text summary of a suite record (CLI output)."""
    manifest = RunManifest.from_dict(record.manifest)
    stamp = manifest.summary()
    ok = sum(1 for e in record.benchmarks if e.status == "ok")
    failed = len(record.benchmarks) - ok
    header = (
        f"suite {record.suite!r}: {ok} ok"
        + (f", {failed} FAILED" if failed else "")
        + f" | git {stamp['sha'][:12]}"
        + (" (dirty)" if stamp.get("dirty") else "")
        + f" | {stamp['duration_s']:.1f}s total"
    )
    rows = [
        [
            e.name,
            e.status,
            _fmt_s(e.wall_s),
            _fmt_mv(e.max_ir_mv),
            str(len(e.anchors)),
            str(e.counters.get("solver.rhs_solved", 0)),
        ]
        for e in record.benchmarks
    ]
    table = table_markdown(
        ["bench", "status", "wall s", "max IR mV", "anchors", "rhs"], rows
    )
    return header + "\n" + table


def trajectory_rows(records: Sequence[SuiteRecord], name: str) -> List[List[str]]:
    """One bench's history across records (debugging threshold tuning)."""
    rows = []
    for record in records:
        entry = record.entry(name)
        if entry is None:
            continue
        rows.append(
            [
                record.created,
                str(record.git.get("sha", ""))[:12],
                _fmt_s(entry.wall_s),
                _fmt_mv(entry.max_ir_mv),
            ]
        )
    return rows
