"""Benchmark telemetry and regression tracking (``repro.bench``).

Layers on :mod:`repro.obs`: a registry of the repository's bench
scripts, a unified runner that wraps each in spans and metric
snapshots, a schema-versioned ``BENCH_*.json`` suite record, and a
baseline comparator with noise-aware thresholds -- the machinery behind
``repro3d bench`` / ``python -m repro.bench`` and the CI regression
gate.  See ``docs/benchmarks.md``.
"""

from repro.bench.baseline import (
    BenchVerdict,
    SuiteComparison,
    Thresholds,
    baseline_path,
    compare,
    compare_against_root,
    load_baseline,
    update_baseline,
)
from repro.bench.record import (
    BENCH_SCHEMA_VERSION,
    BenchmarkEntry,
    SuiteRecord,
    find_records,
    load_record,
    load_trajectory,
    validate_record,
)
from repro.bench.registry import (
    REGISTRY,
    BenchSpec,
    benchmarks_dir,
    discover,
    register_bench,
    select,
)
from repro.bench.runner import default_record_path, run_bench, run_suite

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchSpec",
    "BenchVerdict",
    "BenchmarkEntry",
    "REGISTRY",
    "SuiteComparison",
    "SuiteRecord",
    "Thresholds",
    "baseline_path",
    "benchmarks_dir",
    "compare",
    "compare_against_root",
    "default_record_path",
    "discover",
    "find_records",
    "load_baseline",
    "load_record",
    "load_trajectory",
    "register_bench",
    "run_bench",
    "run_suite",
    "select",
    "update_baseline",
    "validate_record",
]
