"""Unified benchmark runner: drive every registered bench with telemetry.

``run_suite`` discovers the registered benches, executes each inside a
trace span with a metrics snapshot around it, and assembles one
:class:`~repro.bench.record.SuiteRecord`: median-of-k wall time,
solver/cache/sim counter deltas, peak RSS, the worst DRAM IR observed,
and per-row paper-anchor deviations for experiment-backed benches.

The runner drives the *same* functions pytest collects, by satisfying
their harness parameter (see :mod:`repro.bench.registry`): the
``run_paper_experiment`` contract is reimplemented with telemetry
capture, and pytest-benchmark's ``benchmark.pedantic`` gets a minimal
shim.  A failing bench is recorded (``status: "failed"``) and the suite
continues -- the comparator and CI gate decide what a failure means.
"""

from __future__ import annotations

import os
import statistics
import time
import traceback
from contextlib import contextmanager
from datetime import datetime, timezone
from typing import Dict, List, Optional, Sequence

from repro.bench.record import BenchmarkEntry, SuiteRecord
from repro.bench.registry import (
    HARNESS_EXPERIMENT,
    HARNESS_PEDANTIC,
    BenchSpec,
    benchmarks_dir,
    discover,
    select,
)
from repro.obs import metrics as _metrics
from repro.obs.log import get_logger
from repro.obs.manifest import build_manifest
from repro.obs.trace import span

_log = get_logger("bench")

#: Environment flags the bench scripts themselves honour.
SMOKE_ENV = "REPRO_BENCH_SMOKE"
FAST_ENV = "REPRO_FAST"

#: Histogram whose max is the suite's headline physics number.
IR_HIST = "ir.dram_max_mv"


def _peak_rss_kb() -> Optional[float]:
    """Process peak RSS in KiB (Linux semantics); None where unsupported."""
    try:
        import resource

        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, ValueError, OSError):  # pragma: no cover
        return None


class _PedanticShim:
    """Stand-in for pytest-benchmark's fixture: run once, no stats."""

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
        return fn(*args, **(kwargs or {}))

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)


def extract_anchors(result) -> List[Dict[str, object]]:
    """Per-row paper-anchor deviations from an ExperimentResult."""
    anchors: List[Dict[str, object]] = []
    for row in result.rows:
        for metric in row.paper:
            paper = row.paper.get(metric)
            model = row.model.get(metric)
            if not isinstance(paper, (int, float)) or not isinstance(
                model, (int, float)
            ):
                continue
            anchors.append(
                {
                    "row": row.label,
                    "metric": metric,
                    "paper": float(paper),
                    "model": float(model),
                    "deviation_pct": row.deviation_percent(metric),
                }
            )
    return anchors


def _make_experiment_runner(sink: Dict[str, object], fast: bool, archive: bool):
    """The ``run_paper_experiment`` contract with telemetry capture.

    Mirrors the pytest fixture in ``benchmarks/conftest.py``: runs the
    experiment, archives its table under ``benchmarks/results/``
    (created on demand), and returns the result for the bench's checks.
    Anchor deviations land in ``sink``.
    """

    def runner(experiment_id: str, **checks):
        from repro.experiments import run_experiment

        result = run_experiment(experiment_id, fast=fast)
        sink["experiment_id"] = experiment_id
        sink["anchors"] = extract_anchors(result)
        if archive:
            results_dir = benchmarks_dir() / "results"
            results_dir.mkdir(parents=True, exist_ok=True)
            (results_dir / f"{experiment_id}.txt").write_text(
                result.fmt() + "\n"
            )
        return result

    return runner


@contextmanager
def _suite_env(smoke: bool):
    """Expose the suite mode to bench scripts via their historical flags."""
    saved = {k: os.environ.get(k) for k in (SMOKE_ENV, FAST_ENV)}
    os.environ[SMOKE_ENV] = "1" if smoke else "0"
    os.environ[FAST_ENV] = "1" if smoke else "0"
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def run_bench(
    spec: BenchSpec,
    fast: bool = True,
    repeats: int = 1,
    archive: bool = True,
    isolate: bool = False,
    merge_into=None,
) -> BenchmarkEntry:
    """Run one registered bench ``repeats`` times; median the wall time.

    ``isolate`` resets the process-global metrics registry first, so the
    bench's histogram min/max (and therefore ``max_ir_mv``) are exact
    rather than suite-running bounds -- the suite runner owns its
    process and always isolates.  It also clears the perf-layer
    stack/power-map caches before *every* repeat, so each wall sample is
    a cold-cache measurement: without this, a median-of-k baseline is a
    warm-cache number (repeats 2..k reuse the factorization) that any
    single-repeat run "regresses" against by the full cache-miss cost.
    ``merge_into`` (a :class:`~repro.obs.metrics.MetricsRegistry`)
    accumulates the bench's metric delta for suite-level reporting
    despite the resets.
    """
    entry = BenchmarkEntry(name=spec.name, heavy=spec.heavy)
    if isolate:
        _metrics.reset_metrics()
    before = _metrics.snapshot()
    walls: List[float] = []
    sink: Dict[str, object] = {}
    with span(f"bench.{spec.name}", harness=spec.harness):
        for _ in range(max(1, repeats)):
            if isolate:
                from repro.perf.cache import clear_caches

                clear_caches()
            t0 = time.perf_counter()
            try:
                if spec.harness == HARNESS_EXPERIMENT:
                    spec.func(_make_experiment_runner(sink, fast, archive))
                elif spec.harness == HARNESS_PEDANTIC:
                    spec.func(_PedanticShim())
                else:
                    spec.func()
            except BaseException as exc:  # noqa: BLE001 - suite must survive
                entry.status = "failed"
                entry.error = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
                _log.warning("bench %s FAILED: %s", spec.name, entry.error)
                walls.append(time.perf_counter() - t0)
                break
            walls.append(time.perf_counter() - t0)
    delta = _metrics.diff(before, _metrics.snapshot())
    if merge_into is not None:
        merge_into.merge(delta)
    entry.wall_s_all = [round(w, 6) for w in walls]
    entry.wall_s = round(statistics.median(walls), 6)
    entry.peak_rss_kb = _peak_rss_kb()
    entry.counters = dict(sorted(delta.get("counters", {}).items()))
    # Structural provenance: every stack plan this bench touched.
    from repro.pdn.plan import plans_from_counters

    entry.plan_hashes = sorted(plans_from_counters(entry.counters))
    ir_hist = delta.get("histograms", {}).get(IR_HIST)
    if ir_hist is not None:
        # The sample reservoir is exact per-interval; the histogram max
        # is only an upper bound when the registry was not reset.
        samples = ir_hist.get("samples") or ()
        entry.max_ir_mv = float(max(samples) if samples else ir_hist["max"])
    entry.anchors = list(sink.get("anchors", []))
    return entry


def run_suite(
    names: Optional[Sequence[str]] = None,
    smoke: bool = True,
    repeats: int = 1,
    bench_dir=None,
    archive: bool = True,
) -> SuiteRecord:
    """Discover, select, and run benches; return the suite record.

    ``names`` restricts the run (and may include heavy benches);
    otherwise ``smoke`` selects the sub-second set.  ``repeats`` re-runs
    each bench for median-of-k timing (physics results are deterministic,
    so repeats only firm up the perf numbers).
    """
    registry = discover(bench_dir)
    specs = select(names, smoke=smoke, registry=registry)
    if not specs:
        from repro.errors import ConfigurationError

        raise ConfigurationError("no benches selected")
    suite = "custom" if names else ("smoke" if smoke else "full")
    _log.info(
        "bench suite %r: %d benches, repeats=%d", suite, len(specs), repeats
    )
    accumulator = _metrics.MetricsRegistry()
    entries: List[BenchmarkEntry] = []
    with _suite_env(smoke):
        with span("bench.suite", suite=suite, repeats=repeats) as sp:
            for spec in specs:
                entry = run_bench(
                    spec,
                    fast=smoke,
                    repeats=repeats,
                    archive=archive,
                    isolate=True,
                    merge_into=accumulator,
                )
                _log.info(
                    "  %-28s %-6s %8.3fs%s",
                    spec.name,
                    entry.status,
                    entry.wall_s,
                    f"  maxIR {entry.max_ir_mv:.2f} mV"
                    if entry.max_ir_mv is not None
                    else "",
                )
                entries.append(entry)
    manifest = build_manifest(
        experiment_id="bench.suite",
        title=f"benchmark suite ({suite})",
        config={
            "suite": suite,
            "smoke": smoke,
            "repeats": repeats,
            "benches": [s.name for s in specs],
        },
        duration_s=sp.duration,
        metrics_snapshot=accumulator.snapshot(),
    )
    manifest_dict = manifest.to_dict()
    return SuiteRecord(
        suite=suite,
        created=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        smoke=smoke,
        repeats=max(1, repeats),
        git=dict(manifest_dict["git"]),
        workers=manifest_dict["workers"],
        environment=dict(manifest_dict["environment"]),
        manifest=manifest_dict,
        benchmarks=entries,
    )


def default_record_path(record: SuiteRecord, root=None):
    """Repository-root path for a record's canonical ``BENCH_*`` name."""
    root = root if root is not None else benchmarks_dir().parent
    return root / record.record_name()
