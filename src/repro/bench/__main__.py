"""``python -m repro.bench`` -- alias for ``repro3d bench``.

Forwards every argument to the CLI's bench subcommand, so the module
form works in environments where the console script is not installed
(CI containers running straight from a checkout).
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
