"""Schema-versioned benchmark suite records: the ``BENCH_*.json`` trajectory.

One suite run produces one record file at the repository root, named
``BENCH_<UTC timestamp>_<short sha>.json``.  Committed across PRs these
files form the longitudinal perf/accuracy trajectory the comparator
(:mod:`repro.bench.baseline`) reads its noise bands from -- the same
role SRAM-PG-style PDN benchmark suites give their standardized result
tables: numbers are only comparable when every run records them the
same way.

A record is manifest-stamped: it embeds a full
:class:`repro.obs.manifest.RunManifest` (validated on write *and* load)
so the provenance machinery CI already checks covers bench artifacts
too.  Like the manifest schema, validation is hand-rolled -- no
jsonschema dependency.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.obs.manifest import validate_manifest

#: Bump when the record layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: ``BENCH_20260806T120000Z_ab12cd3.json``
RECORD_NAME_RE = re.compile(
    r"^BENCH_(?P<stamp>\d{8}T\d{6}Z)_(?P<sha>[0-9a-f]{7}|nogit)\.json$"
)

#: Required per-benchmark entry fields and their types.
ENTRY_SCHEMA: Dict[str, tuple] = {
    "name": (str,),
    "status": (str,),
    "heavy": (bool,),
    "wall_s": (int, float),
    "wall_s_all": (list,),
    "peak_rss_kb": (int, float, type(None)),
    "counters": (dict,),
    "max_ir_mv": (int, float, type(None)),
    "anchors": (list,),
    "error": (str, type(None)),
}

#: Optional per-benchmark entry fields (validated only when present, so
#: records written before the field existed stay valid).
OPTIONAL_ENTRY_FIELDS: Dict[str, tuple] = {
    "plan_hashes": (list,),
}

#: Allowed per-benchmark statuses.
ENTRY_STATUSES = ("ok", "failed")

#: Required suite-level fields and their types.
RECORD_SCHEMA: Dict[str, tuple] = {
    "schema_version": (int,),
    "suite": (str,),
    "created": (str,),
    "smoke": (bool,),
    "repeats": (int,),
    "git": (dict,),
    "workers": (int,),
    "environment": (dict,),
    "manifest": (dict,),
    "benchmarks": (list,),
}


@dataclass
class BenchmarkEntry:
    """Telemetry for one benchmark inside a suite run."""

    name: str
    status: str = "ok"
    heavy: bool = False
    #: Median wall time over ``repeats`` runs (seconds).
    wall_s: float = 0.0
    #: Every individual repeat's wall time, for noise analysis.
    wall_s_all: List[float] = field(default_factory=list)
    #: Process peak RSS high-water mark after this bench (KiB; monotone
    #: within a suite run, so per-bench growth is the interesting signal).
    peak_rss_kb: Optional[float] = None
    #: Counter deltas recorded while the bench ran (solver.factorizations,
    #: solver.rhs_solved, cache.* hits/misses, sim.* ...).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Worst DRAM IR drop observed during the bench (mV), if any solve ran.
    max_ir_mv: Optional[float] = None
    #: Per-row paper-anchor deviations: {"row", "metric", "paper",
    #: "model", "deviation_pct"} -- only for experiment-backed benches.
    anchors: List[Dict[str, object]] = field(default_factory=list)
    #: Traceback summary when status == "failed".
    error: Optional[str] = None
    #: Sorted plan hashes of every stack structure the bench built or
    #: reused (``plan.touch.*`` counter deltas) -- lets the comparator
    #: attribute accuracy drift to structural vs. numerical change.
    plan_hashes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class SuiteRecord:
    """One suite run: provenance plus a list of benchmark entries."""

    suite: str
    created: str
    smoke: bool
    repeats: int
    git: Dict[str, object]
    workers: int
    environment: Dict[str, object]
    manifest: Dict[str, object]
    benchmarks: List[BenchmarkEntry] = field(default_factory=list)
    schema_version: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["benchmarks"] = [
            e.to_dict() if isinstance(e, BenchmarkEntry) else dict(e)
            for e in self.benchmarks
        ]
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, default=str) + "\n"

    def write(self, path) -> Path:
        """Validate and atomically write the record; returns the path."""
        from repro.obs.atomic import atomic_write_text

        data = self.to_dict()
        validate_record(data)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        return atomic_write_text(path, self.to_json())

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SuiteRecord":
        validate_record(data)
        known = set(RECORD_SCHEMA)
        kwargs = {k: v for k, v in data.items() if k in known}
        entry_fields = set(ENTRY_SCHEMA) | set(OPTIONAL_ENTRY_FIELDS)
        kwargs["benchmarks"] = [
            BenchmarkEntry(**{k: v for k, v in e.items() if k in entry_fields})
            for e in data["benchmarks"]
        ]
        return cls(**kwargs)

    def entry(self, name: str) -> Optional[BenchmarkEntry]:
        for e in self.benchmarks:
            if e.name == name:
                return e
        return None

    def names(self) -> List[str]:
        return [e.name for e in self.benchmarks]

    def record_name(self) -> str:
        """Canonical trajectory file name for this record."""
        stamp = re.sub(r"[-:]", "", self.created.split(".")[0].split("+")[0])
        stamp = stamp if stamp.endswith("Z") else stamp + "Z"
        sha = str(self.git.get("sha", ""))
        short = sha[:7] if re.fullmatch(r"[0-9a-f]{7,40}", sha) else "nogit"
        return f"BENCH_{stamp}_{short}.json"


def validate_record(data: Mapping[str, object]) -> None:
    """Raise :class:`ConfigurationError` unless ``data`` fits the schema."""
    problems = []
    for key, types in RECORD_SCHEMA.items():
        if key not in data:
            problems.append(f"missing field {key!r}")
        elif not isinstance(data[key], types):
            problems.append(
                f"field {key!r} has type {type(data[key]).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    if not problems and data["schema_version"] != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version {data['schema_version']} != {BENCH_SCHEMA_VERSION}"
        )
    if not problems:
        seen = set()
        for i, entry in enumerate(data["benchmarks"]):
            if not isinstance(entry, Mapping):
                problems.append(f"benchmarks[{i}] is not a mapping")
                continue
            for key, types in ENTRY_SCHEMA.items():
                if key not in entry:
                    problems.append(f"benchmarks[{i}] missing field {key!r}")
                elif not isinstance(entry[key], types):
                    problems.append(
                        f"benchmarks[{i}].{key} has type "
                        f"{type(entry[key]).__name__}, expected "
                        f"{'/'.join(t.__name__ for t in types)}"
                    )
            for key, types in OPTIONAL_ENTRY_FIELDS.items():
                if key in entry and not isinstance(entry[key], types):
                    problems.append(
                        f"benchmarks[{i}].{key} has type "
                        f"{type(entry[key]).__name__}, expected "
                        f"{'/'.join(t.__name__ for t in types)}"
                    )
            status = entry.get("status")
            if status is not None and status not in ENTRY_STATUSES:
                problems.append(
                    f"benchmarks[{i}].status {status!r} not in {ENTRY_STATUSES}"
                )
            name = entry.get("name")
            if name in seen:
                problems.append(f"duplicate benchmark entry {name!r}")
            seen.add(name)
    if not problems:
        try:
            validate_manifest(data["manifest"])
        except ConfigurationError as exc:
            problems.append(f"embedded manifest invalid ({exc})")
    if problems:
        raise ConfigurationError(
            "invalid bench suite record: " + "; ".join(problems)
        )


def load_record(path) -> SuiteRecord:
    """Read, validate, and return a record written by :meth:`write`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"bench record {path} is not JSON: {exc}")
    return SuiteRecord.from_dict(data)


def find_records(root) -> List[Path]:
    """Trajectory files under ``root``, oldest first (timestamp in name)."""
    root = Path(root)
    paths = [p for p in root.glob("BENCH_*.json") if RECORD_NAME_RE.match(p.name)]
    return sorted(paths, key=lambda p: p.name)


def load_trajectory(root, exclude=()) -> List[SuiteRecord]:
    """Load every valid trajectory record under ``root``, oldest first.

    Unreadable or schema-stale files are skipped -- the trajectory may
    span schema versions, and an old record should not break the gate.
    """
    excluded = {Path(p).resolve() for p in exclude}
    records = []
    for path in find_records(root):
        if path.resolve() in excluded:
            continue
        try:
            records.append(load_record(path))
        except ConfigurationError:
            continue
    return records
