"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with one clause while still
distinguishing configuration mistakes from numerical failures.

Errors carry a structured ``context`` dict (``SolverError("singular",
num_nodes=23000)``) that outer layers extend with what they know
(:meth:`ReproError.add_context`): the solver records the worst node, the
stack layer adds the spec/config/state.  The context renders into
``str(exc)`` and survives pickling, so a failure inside a fanned-out
worker process is diagnosable from the parent's logs alone.
"""

from __future__ import annotations

from typing import Dict


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    def __init__(self, *args: object, **context: object) -> None:
        super().__init__(*args)
        self.context: Dict[str, object] = dict(context)

    def add_context(self, **context: object) -> "ReproError":
        """Attach outer-layer context; inner (earlier) keys win."""
        for key, value in context.items():
            self.context.setdefault(key, value)
        return self

    def __str__(self) -> str:
        base = super().__str__()
        if not self.context:
            return base
        detail = ", ".join(f"{k}={v}" for k, v in self.context.items())
        return f"{base} [{detail}]"

    def __reduce__(self):
        # Keep the context across pickling (worker -> parent process).
        return (self.__class__, self.args, {"context": dict(self.context)})

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.context = dict(state.get("context", {}))


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration was supplied.

    Examples: a PDN metal usage outside its legal range, a TSV style that a
    benchmark does not support, a memory state with more active banks than
    the die has.
    """


class FloorplanError(ReproError):
    """A floorplan could not be generated or is geometrically invalid."""


class MeshError(ReproError):
    """A resistive mesh could not be built or assembled."""


class SolverError(ReproError):
    """The linear solve failed (singular system, no supply connection, ...)."""


class SimulationError(ReproError):
    """The memory controller simulation reached an inconsistent state."""


class TraceError(ReproError):
    """A memory trace file could not be parsed.

    Raised with ``path`` and ``line`` context so a malformed line deep in
    a multi-million-line trace is reported as ``path:line`` with the
    offending text.
    """


class RegressionError(ReproError):
    """Regression fitting failed or produced an unusable model."""


class OptimizationError(ReproError):
    """The co-optimizer could not find any feasible solution."""
