"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with one clause while still
distinguishing configuration mistakes from numerical failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration was supplied.

    Examples: a PDN metal usage outside its legal range, a TSV style that a
    benchmark does not support, a memory state with more active banks than
    the die has.
    """


class FloorplanError(ReproError):
    """A floorplan could not be generated or is geometrically invalid."""


class MeshError(ReproError):
    """A resistive mesh could not be built or assembled."""


class SolverError(ReproError):
    """The linear solve failed (singular system, no supply connection, ...)."""


class SimulationError(ReproError):
    """The memory controller simulation reached an inconsistent state."""


class RegressionError(ReproError):
    """Regression fitting failed or produced an unusable model."""


class OptimizationError(ReproError):
    """The co-optimizer could not find any feasible solution."""
