"""Fault tolerance for sweep execution.

The paper scripts assumed a perfect machine: every worker lives, every
CG solve converges, every run finishes.  The production-scale analyses
the roadmap targets (Table-9-size design spaces, SRAM-PG-scale stress
meshes) break each assumption in turn, so this package supplies the
missing layer:

:mod:`repro.resil.faults`
    Deterministic fault injection (``REPRO_FAULT_SPEC``) -- worker
    crashes, transient exceptions, slow tasks, CG convergence stalls --
    seeded so chaos tests and benches replay the exact same failure
    sequence every run.

:mod:`repro.resil.retry`
    :class:`~repro.resil.retry.RetryPolicy` (bounded attempts,
    exponential backoff with deterministic jitter, per-task timeout) and
    :class:`~repro.resil.retry.TaskFailure`, the structured record a
    failed task leaves behind instead of killing the whole run.

:mod:`repro.resil.execute`
    :func:`~repro.resil.execute.run_tasks`, the submit-per-item futures
    engine under :func:`repro.perf.map_design_points`: per-task
    timeouts, retries, pool rebuilds on ``BrokenProcessPool``, serial
    fallback -- and a :class:`~repro.resil.execute.TaskReport` with
    partial results plus failures instead of an all-or-nothing map.

:mod:`repro.resil.checkpoint`
    Journaled sweep checkpoints (``REPRO_CHECKPOINT`` /
    ``repro3d --resume``): completed design-point results keyed by plan
    hash + state + scale, so a killed fig5/fig9/table9 run resumes
    without re-solving finished points.

Everything here is opt-in and pay-for-what-you-use: with no fault spec,
no checkpoint, and a healthy pool, the hot paths run exactly the code
they ran before this package existed.
"""

from repro.resil.checkpoint import (
    CHECKPOINT_ENV,
    CheckpointedResult,
    SweepCheckpoint,
    active_checkpoint_info,
    default_checkpoint,
    point_key,
)
from repro.resil.execute import TaskReport, run_tasks
from repro.resil.faults import (
    FAULT_SPEC_ENV,
    ConvergenceStallFault,
    FaultPlan,
    InjectedFault,
    TransientFault,
    WorkerCrashFault,
    active_plan,
    fault_injection_active,
    parse_fault_spec,
)
from repro.resil.retry import RetryPolicy, TaskFailure, protected_call

__all__ = [
    "CHECKPOINT_ENV",
    "CheckpointedResult",
    "ConvergenceStallFault",
    "FAULT_SPEC_ENV",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "SweepCheckpoint",
    "TaskFailure",
    "TaskReport",
    "TransientFault",
    "WorkerCrashFault",
    "active_checkpoint_info",
    "active_plan",
    "default_checkpoint",
    "fault_injection_active",
    "parse_fault_spec",
    "point_key",
    "protected_call",
    "run_tasks",
]
