"""Journaled sweep checkpoints: kill a run, resume without re-solving.

A design-space sweep is a sequence of (plan, state, scale) solves whose
results are tiny compared to the work producing them.  That asymmetry
makes checkpointing nearly free: journal every completed design point's
summary -- keyed by the :class:`~repro.pdn.plan.StackPlan` ``plan_hash``
(the content address of the physical network) plus the state label and
logic scale -- and a resumed run looks each point up before solving.
Keys are content-addressed, so a resume against *changed* inputs
(edited config, different mesh) misses cleanly instead of serving stale
physics.

Storage is an append-only JSONL journal: a header line identifying the
format, then one ``{"key": ..., "result": {...}}`` object per completed
point, each ``write`` + ``flush`` so a SIGKILL loses at most the
in-flight line.  Loading tolerates exactly that artifact -- a
truncated/corrupt trailing line is skipped with a structured warning
(``resil.checkpoint_corrupt_lines``), never a crash, and the next
append starts on a fresh line.

Activation: ``repro3d --resume PATH`` sets ``REPRO_CHECKPOINT``; the
sweep layer (:class:`repro.pdn.sweep.SweepSolveSession`) picks it up by
default, experiment manifests record the resume lineage
(:func:`active_checkpoint_info`).  A checkpoint hit returns a
:class:`CheckpointedResult` -- the summary fields experiment drivers
consume (``dram_max_mv``, ``logic_max_mv``, ``per_die_mv``,
``total_power_mw``) without the full node-drop vector, which is the
deliberate trade: checkpoints journal *results*, not solver state.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import ConfigurationError
from repro.obs import metrics as _metrics
from repro.obs.log import get_logger

_log = get_logger("resil.checkpoint")

#: Environment variable naming the active checkpoint journal.
CHECKPOINT_ENV = "REPRO_CHECKPOINT"

#: Journal header: first line of every checkpoint file.
HEADER = {"kind": "repro-sweep-checkpoint", "schema": 1}


def point_key(plan_hash: str, state_label: str, logic_scale: float) -> str:
    """Content-addressed key of one design-point solve."""
    return f"{plan_hash}:{state_label}:{logic_scale!r}"


@dataclass
class CheckpointedResult:
    """A journaled design-point summary, shaped like ``StackIRResult``.

    Carries the scalar fields experiment drivers read; ``raw`` (the full
    node-drop vector) is deliberately absent -- a consumer needing it
    must re-solve, which a checkpoint miss does automatically.
    """

    dram_max_mv: float
    logic_max_mv: Optional[float]
    total_power_mw: float
    per_die_mv: Dict[str, float] = field(default_factory=dict)
    state_label: str = ""
    from_checkpoint: bool = True

    def to_dict(self) -> Dict[str, object]:
        return {
            "dram_max_mv": self.dram_max_mv,
            "logic_max_mv": self.logic_max_mv,
            "total_power_mw": self.total_power_mw,
            "per_die_mv": dict(self.per_die_mv),
            "state_label": self.state_label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CheckpointedResult":
        return cls(
            dram_max_mv=float(data["dram_max_mv"]),  # type: ignore[arg-type]
            logic_max_mv=(
                float(data["logic_max_mv"])  # type: ignore[arg-type]
                if data.get("logic_max_mv") is not None
                else None
            ),
            total_power_mw=float(data["total_power_mw"]),  # type: ignore[arg-type]
            per_die_mv={
                str(k): float(v)  # type: ignore[arg-type]
                for k, v in dict(data.get("per_die_mv", {})).items()  # type: ignore[arg-type]
            },
            state_label=str(data.get("state_label", "")),
        )

    @classmethod
    def from_result(cls, result) -> "CheckpointedResult":
        """Summarize a solve result (``StackIRResult``-shaped) for the journal."""
        state = getattr(result, "state", None)
        return cls(
            dram_max_mv=float(result.dram_max_mv),
            logic_max_mv=(
                float(result.logic_max_mv)
                if result.logic_max_mv is not None
                else None
            ),
            total_power_mw=float(result.total_power_mw),
            per_die_mv={k: float(v) for k, v in result.per_die_mv.items()},
            state_label=state.label() if state is not None else "",
            from_checkpoint=False,
        )


class SweepCheckpoint:
    """One append-only design-point journal (see module docstring)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._entries: Dict[str, CheckpointedResult] = {}
        self.hits = 0
        self.misses = 0
        self.records = 0
        self.corrupt_lines = 0
        self.loaded = 0
        self._load()

    # -- journal I/O -------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        text = self.path.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                # Killed-process artifact: a half-written trailing line
                # (or a corrupted interior one).  Skip and keep loading.
                self.corrupt_lines += 1
                _metrics.inc("resil.checkpoint_corrupt_lines")
                _log.warning(
                    "skipping corrupt checkpoint line %d in %s",
                    lineno,
                    self.path,
                    extra={"fields": {"path": str(self.path), "line": lineno}},
                )
                continue
            if not isinstance(data, dict):
                self.corrupt_lines += 1
                _metrics.inc("resil.checkpoint_corrupt_lines")
                continue
            if data.get("kind") == HEADER["kind"]:
                continue  # header line
            key = data.get("key")
            result = data.get("result")
            if not isinstance(key, str) or not isinstance(result, dict):
                self.corrupt_lines += 1
                _metrics.inc("resil.checkpoint_corrupt_lines")
                continue
            try:
                self._entries[key] = CheckpointedResult.from_dict(result)
            except (KeyError, TypeError, ValueError):
                self.corrupt_lines += 1
                _metrics.inc("resil.checkpoint_corrupt_lines")
        self.loaded = len(self._entries)
        if self.loaded:
            _log.warning(
                "resuming from checkpoint %s: %d completed design points",
                self.path,
                self.loaded,
                extra={
                    "fields": {"path": str(self.path), "entries": self.loaded}
                },
            )

    def _append_line(self, payload: Dict[str, object]) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        new = not self.path.exists() or self.path.stat().st_size == 0
        with open(self.path, "a", encoding="utf-8") as fh:
            if new:
                fh.write(json.dumps(HEADER, sort_keys=True) + "\n")
            else:
                # Guard against a truncated tail from a killed writer:
                # if the file does not end in a newline, start one.
                with open(self.path, "rb") as check:
                    check.seek(-1, os.SEEK_END)
                    if check.read(1) != b"\n":
                        fh.write("\n")
            fh.write(json.dumps(payload, sort_keys=True) + "\n")
            fh.flush()

    # -- lookup / record ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> Optional[CheckpointedResult]:
        """The journaled result for ``key``, or None (counts hit/miss)."""
        with self._lock:
            hit = self._entries.get(key)
            if hit is not None:
                self.hits += 1
                _metrics.inc("resil.checkpoint_hits")
            else:
                self.misses += 1
                _metrics.inc("resil.checkpoint_misses")
            return hit

    def record(self, key: str, result) -> CheckpointedResult:
        """Journal one completed design point (idempotent per key)."""
        entry = CheckpointedResult.from_result(result)
        with self._lock:
            if key in self._entries:
                return self._entries[key]
            self._entries[key] = entry
            self.records += 1
            _metrics.inc("resil.checkpoint_records")
            self._append_line({"key": key, "result": entry.to_dict()})
        return entry

    def summary(self) -> Dict[str, object]:
        """Resume-lineage record for run manifests."""
        with self._lock:
            return {
                "path": str(self.path),
                "entries": len(self._entries),
                "loaded": self.loaded,
                "hits": self.hits,
                "misses": self.misses,
                "records": self.records,
                "corrupt_lines": self.corrupt_lines,
            }


_default_lock = threading.Lock()
_default: Optional[SweepCheckpoint] = None


def default_checkpoint() -> Optional[SweepCheckpoint]:
    """The process-default checkpoint named by ``REPRO_CHECKPOINT``.

    One shared instance per path, created lazily -- every sweep session
    in the process journals into (and resumes from) the same file, which
    is what ``repro3d --resume`` means.  Cleared when the variable is
    unset or points elsewhere.
    """
    global _default
    raw = os.environ.get(CHECKPOINT_ENV, "").strip()
    with _default_lock:
        if not raw:
            _default = None
            return None
        path = Path(raw)
        if path.exists() and path.is_dir():
            raise ConfigurationError(
                f"checkpoint path {path} is a directory", env=CHECKPOINT_ENV
            )
        if _default is None or _default.path != path:
            _default = SweepCheckpoint(path)
        return _default


def reset_default_checkpoint() -> None:
    """Drop the cached process-default instance (tests)."""
    global _default
    with _default_lock:
        _default = None


def active_checkpoint_info() -> Optional[Dict[str, object]]:
    """Manifest lineage: the active checkpoint's summary, if any."""
    ck = default_checkpoint()
    return ck.summary() if ck is not None else None
