"""Submit-per-item task execution with retries, timeouts, and rebuilds.

:func:`run_tasks` is the engine under
:func:`repro.perf.parallel.map_design_points`.  Where the old
``ex.map`` path was all-or-nothing -- the first worker exception (or a
``BrokenProcessPool`` from an OOM-killed worker) discarded every
completed solve -- this one tracks each item as its own future and
degrades stepwise:

* a failed task is retried (transient errors only, bounded attempts
  with backoff -- see :class:`~repro.resil.retry.RetryPolicy`);
* a task past its deadline is abandoned and resubmitted
  (``task_timeout_s``);
* a broken pool is torn down and rebuilt (up to ``pool_rebuilds``
  times), re-queueing only the in-flight items -- completed results
  are kept;
* when the pool cannot be rebuilt (or cannot start at all: sandboxes,
  restricted containers), the remaining items run serially in the
  parent;
* a task that exhausts its attempts becomes a
  :class:`~repro.resil.retry.TaskFailure` record, not a crash.

The return value is a :class:`TaskReport`: results in input order
(``None`` holes where a task failed) plus the failure records and
retry/timeout/rebuild counters, which also land in the obs metrics
registry under ``resil.*``.

Observability still crosses the process boundary exactly as before:
every worker task runs inside :class:`~repro.perf.parallel._ObsTask`,
and its timer/metric/span/profile/convergence deltas are merged
parent-side as each future completes.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro.obs import metrics as _metrics
from repro.obs.log import get_logger
from repro.resil import faults
from repro.resil.retry import RetryPolicy, TaskFailure

_log = get_logger("resil.execute")

T = TypeVar("T")
R = TypeVar("R")

#: Poll period while waiting on futures; short enough that deadline
#: enforcement is responsive, long enough to stay off the hot path.
_WAIT_SLICE_S = 0.1


@dataclass
class TaskReport:
    """Partial results plus everything that went wrong getting them."""

    results: List[Any] = field(default_factory=list)
    failures: List[TaskFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    serial_fallback: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def completed(self) -> int:
        return len(self.results) - len(self.failures)

    def raise_first(self) -> None:
        """Re-raise the first (by input order) failure's exception.

        Compatibility shim for all-or-nothing callers
        (:func:`~repro.perf.parallel.map_design_points`): the historical
        contract was "first exception propagates".
        """
        if not self.failures:
            return
        first = min(self.failures, key=lambda f: f.index)
        if first.exception is not None:
            raise first.exception
        raise TimeoutError(
            f"task {first.index} ({first.item}) timed out after "
            f"{first.attempts} attempts"
        )

    def summary(self) -> Dict[str, object]:
        return {
            "tasks": len(self.results),
            "completed": self.completed,
            "failures": [f.to_dict() for f in self.failures],
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "serial_fallback": self.serial_fallback,
        }


@dataclass
class _TaskState:
    """Parent-side bookkeeping for one item across its attempts."""

    index: int
    item: Any
    tries: int = 0  # submissions so far (fault-injection re-roll key)
    failures: int = 0  # failed attempts counted against the budget
    deadline: Optional[float] = None
    last_exc: Optional[BaseException] = None


def _observe_report(report: TaskReport) -> None:
    if report.retries:
        _metrics.inc("resil.retries", report.retries)
    if report.timeouts:
        _metrics.inc("resil.task_timeouts", report.timeouts)
    if report.pool_rebuilds:
        _metrics.inc("resil.pool_rebuilds", report.pool_rebuilds)
    if report.failures:
        _metrics.inc("resil.task_failures", len(report.failures))
    if report.serial_fallback:
        _metrics.inc("resil.serial_fallbacks")


def _run_serial(
    fn: Callable[[T], R],
    states: Sequence[_TaskState],
    policy: RetryPolicy,
    report: TaskReport,
) -> None:
    """Run task states in the parent process, with retry + faults.

    The serial path cannot preempt itself, so ``task_timeout_s`` is not
    enforced here -- timeouts are a parallel-executor feature.
    """
    for st in states:
        while True:
            try:
                faults.check_task(f"{st.index}", attempt=st.tries)
                report.results[st.index] = fn(st.item)
                break
            except Exception as exc:
                st.tries += 1
                st.failures += 1
                st.last_exc = exc
                if policy.is_transient(exc) and st.failures < policy.max_attempts:
                    report.retries += 1
                    delay = policy.backoff_s(st.failures, key=str(st.index))
                    if delay > 0:
                        time.sleep(delay)
                    continue
                report.failures.append(
                    TaskFailure.from_exception(
                        st.index, st.item, exc, attempts=st.failures
                    )
                )
                break


def _drain_broken_pool(
    ex: ProcessPoolExecutor, pending: Dict[Future, _TaskState]
) -> List[_TaskState]:
    """Collect every in-flight task from a broken pool and shut it down.

    Futures that completed before the breakage already delivered their
    results; everything still pending is re-queued with a bumped try
    counter (so deterministic fault draws re-roll).
    """
    requeue: List[_TaskState] = []
    for fut, st in pending.items():
        fut.cancel()
        st.tries += 1
        requeue.append(st)
    pending.clear()
    ex.shutdown(wait=False, cancel_futures=True)
    requeue.sort(key=lambda s: s.index)
    return requeue


def run_tasks(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int,
    policy: Optional[RetryPolicy] = None,
    task_factory: Optional[Callable[[Callable[[T], R]], Callable]] = None,
    merge: Optional[Callable[[Any], Any]] = None,
) -> TaskReport:
    """Fan ``fn`` over ``items``; always returns a :class:`TaskReport`.

    ``workers`` must already be resolved (see
    :func:`repro.perf.parallel.resolve_workers`).  ``task_factory``
    wraps ``fn`` for worker-side execution (the obs-delta shipping
    wrapper); ``merge`` post-processes each worker return parent-side
    and yields the bare result.  Both default to identity, which is
    what the serial path uses.
    """
    items = list(items)
    policy = policy or RetryPolicy.from_env()
    report = TaskReport(results=[None] * len(items))
    states = [_TaskState(index=i, item=item) for i, item in enumerate(items)]
    if not items:
        return report

    if workers <= 1 or len(items) <= 1:
        _run_serial(fn, states, policy, report)
        _observe_report(report)
        return report

    task = task_factory(fn) if task_factory is not None else fn
    unwrap = merge if merge is not None else (lambda wr: wr)
    max_workers = min(workers, len(items))
    rebuilds_left = policy.pool_rebuilds
    queue: List[_TaskState] = list(states)
    pending: Dict[Future, _TaskState] = {}
    ex: Optional[ProcessPoolExecutor] = None

    def _submit(st: _TaskState) -> None:
        assert ex is not None
        fut = ex.submit(task, (st.index, st.tries, st.item))
        if policy.task_timeout_s:
            st.deadline = time.monotonic() + policy.task_timeout_s
        pending[fut] = st

    def _record_failure(st: _TaskState, timed_out: bool = False) -> None:
        exc = st.last_exc
        if exc is None:
            exc = TimeoutError(
                f"task timed out after {policy.task_timeout_s}s"
            )
        report.failures.append(
            TaskFailure.from_exception(
                st.index, st.item, exc, attempts=st.failures, timed_out=timed_out
            )
        )

    def _handle_error(st: _TaskState, exc: BaseException) -> None:
        st.tries += 1
        st.failures += 1
        st.last_exc = exc
        if policy.is_transient(exc) and st.failures < policy.max_attempts:
            report.retries += 1
            delay = policy.backoff_s(st.failures, key=str(st.index))
            if delay > 0:
                time.sleep(delay)
            queue.append(st)
        else:
            _record_failure(st)

    try:
        ex = ProcessPoolExecutor(max_workers=max_workers)
    except (OSError, PermissionError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc}); falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        report.serial_fallback = True
        _run_serial(fn, states, policy, report)
        _observe_report(report)
        return report

    try:
        while queue or pending:
            pool_broken = False
            while queue and not pool_broken:
                st = queue.pop(0)
                try:
                    _submit(st)
                except (BrokenProcessPool, RuntimeError) as exc:
                    # submit() raises once the pool is already broken.
                    queue.insert(0, st)
                    st.last_exc = exc
                    pool_broken = True
            if not pool_broken and pending:
                timeout = _WAIT_SLICE_S
                now = time.monotonic()
                deadlines = [
                    st.deadline for st in pending.values() if st.deadline
                ]
                if deadlines:
                    timeout = max(0.0, min(min(deadlines) - now, timeout))
                done, _ = wait(
                    set(pending), timeout=timeout, return_when=FIRST_COMPLETED
                )
                for fut in done:
                    st = pending.pop(fut)
                    try:
                        wr = fut.result()
                    except BrokenProcessPool as exc:
                        st.last_exc = exc
                        st.tries += 1
                        queue.append(st)
                        pool_broken = True
                    except Exception as exc:
                        _handle_error(st, exc)
                    else:
                        report.results[st.index] = unwrap(wr)
                # Deadline sweep: abandon overdue futures and retry.
                if policy.task_timeout_s:
                    now = time.monotonic()
                    for fut, st in list(pending.items()):
                        if st.deadline is not None and now >= st.deadline:
                            del pending[fut]
                            fut.cancel()
                            st.tries += 1
                            st.failures += 1
                            st.last_exc = None
                            report.timeouts += 1
                            if st.failures < policy.max_attempts:
                                report.retries += 1
                                queue.append(st)
                            else:
                                _record_failure(st, timed_out=True)
            if pool_broken:
                queue.extend(_drain_broken_pool(ex, pending))
                queue.sort(key=lambda s: s.index)
                if rebuilds_left > 0:
                    rebuilds_left -= 1
                    report.pool_rebuilds += 1
                    _log.warning(
                        "process pool broke; rebuilding (%d rebuilds left, "
                        "%d tasks re-queued)",
                        rebuilds_left,
                        len(queue),
                        extra={
                            "fields": {
                                "rebuilds_left": rebuilds_left,
                                "requeued": len(queue),
                            }
                        },
                    )
                    ex = ProcessPoolExecutor(max_workers=max_workers)
                else:
                    # Rebuild budget exhausted: finish the remaining
                    # items serially rather than lose completed work.
                    _log.warning(
                        "pool rebuild budget exhausted; finishing %d tasks "
                        "serially",
                        len(queue),
                        extra={"fields": {"remaining": len(queue)}},
                    )
                    report.serial_fallback = True
                    _run_serial(fn, queue, policy, report)
                    queue = []
    finally:
        if ex is not None:
            ex.shutdown(wait=False, cancel_futures=True)

    _observe_report(report)
    return report
