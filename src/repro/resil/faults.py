"""Deterministic fault injection for chaos tests and benches.

A fault-tolerance layer that is only exercised by real outages is
untested code.  This module injects the failure modes the resil stack
must survive -- worker crashes, transient exceptions, slow tasks, CG
convergence stalls -- under a spec that makes every injection
*deterministic*: whether a fault fires at a given site is a pure
function of ``(seed, site, key, attempt)``, hashed through sha256 into
a uniform [0, 1) draw compared against the rule's probability.  Two
runs with the same spec inject the same faults at the same points;
bumping ``attempt`` on retry re-rolls the draw, so a crashed task is
not doomed to crash identically forever.

Spec grammar (``REPRO_FAULT_SPEC``)::

    rule[,rule...]
    rule  := kind[:param=value...]
    kind  := worker_crash | transient | slow_task | cg_stall
    param := p=<probability 0..1> | n=<fire first n times>
           | seed=<int> | ms=<sleep milliseconds, slow_task only>

Examples::

    worker_crash:p=0.2:seed=7
    transient:p=0.1:seed=3,slow_task:p=0.05:ms=200:seed=4
    cg_stall:n=1

Fault kinds:

``worker_crash``
    Inside a pool worker process: ``os._exit`` -- the process dies
    without cleanup, exactly like the OOM killer, and the parent sees
    ``BrokenProcessPool``.  In the parent process (serial execution)
    the hard kill would take the whole run down, so it degrades to
    raising :class:`WorkerCrashFault` (retryable) instead.
``transient``
    Raises :class:`TransientFault` -- the injected stand-in for flaky
    I/O and racy environment errors.  Retry policies treat it (like
    every :class:`InjectedFault`) as transient.
``slow_task``
    Sleeps ``ms`` milliseconds before the task body runs -- the hook
    for exercising per-task timeouts.
``cg_stall``
    Checked at iterative-solve entry (:mod:`repro.rmesh.backends`);
    raises :class:`ConvergenceStallFault`, a :class:`SolverError`
    subclass, so it takes exactly the non-convergence path solver
    escalation must handle.

A malformed spec raises :class:`~repro.errors.ConfigurationError`
eagerly: unlike a tuning knob, a typo'd *chaos* spec silently parsing
to "no faults" would turn every chaos test into a vacuous pass.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ReproError, SolverError
from repro.obs import metrics as _metrics
from repro.obs.log import get_logger

_log = get_logger("resil.faults")

#: Environment variable carrying the fault spec (workers inherit it).
FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

FAULT_KINDS = ("worker_crash", "transient", "slow_task", "cg_stall")

#: Exit code of an injected hard worker crash (visible in pool logs).
CRASH_EXIT_CODE = 73


class InjectedFault(ReproError):
    """Base class for injected failures; always considered transient."""


class WorkerCrashFault(InjectedFault):
    """Serial-mode stand-in for a hard worker death."""


class TransientFault(InjectedFault):
    """An injected flaky-environment error."""


class ConvergenceStallFault(SolverError):
    """An injected iterative-solver stall.

    Subclasses :class:`~repro.errors.SolverError` (not
    :class:`InjectedFault`) on purpose: it must flow through the same
    ``except SolverError`` escalation path a real non-convergence takes.
    """


@dataclass(frozen=True)
class FaultRule:
    """One parsed spec rule."""

    kind: str
    p: float = 0.0
    n: Optional[int] = None
    seed: int = 0
    ms: int = 50

    def describe(self) -> str:
        parts = [self.kind]
        if self.n is not None:
            parts.append(f"n={self.n}")
        else:
            parts.append(f"p={self.p}")
        parts.append(f"seed={self.seed}")
        if self.kind == "slow_task":
            parts.append(f"ms={self.ms}")
        return ":".join(parts)


def _uniform_draw(seed: int, site: str, key: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) draw for one decision point."""
    token = f"{seed}:{site}:{key}:{attempt}".encode()
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def parse_fault_spec(text: str) -> List[FaultRule]:
    """Parse a spec string into rules; raises ``ConfigurationError``."""
    rules: List[FaultRule] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        kind = parts[0].strip().lower()
        if kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; known: {list(FAULT_KINDS)}",
                spec=text,
            )
        params: Dict[str, str] = {}
        for part in parts[1:]:
            if "=" not in part:
                raise ConfigurationError(
                    f"fault parameter {part!r} is not name=value", spec=text
                )
            name, _, value = part.partition("=")
            params[name.strip().lower()] = value.strip()
        try:
            p = float(params.pop("p", "0"))
            n = int(params.pop("n")) if "n" in params else None
            seed = int(params.pop("seed", "0"))
            ms = int(params.pop("ms", "50"))
        except ValueError as exc:
            raise ConfigurationError(
                f"malformed fault parameter in {chunk!r}: {exc}", spec=text
            ) from None
        if params:
            raise ConfigurationError(
                f"unknown fault parameters {sorted(params)} in {chunk!r}",
                spec=text,
            )
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {p}", spec=text
            )
        if n is None and p == 0.0:
            raise ConfigurationError(
                f"fault rule {chunk!r} never fires: give p= or n=", spec=text
            )
        rules.append(FaultRule(kind=kind, p=p, n=n, seed=seed, ms=ms))
    return rules


class FaultPlan:
    """Parsed rules plus the mutable fire-counters for ``n=`` rules."""

    def __init__(self, spec: str) -> None:
        self.spec = spec
        self.rules = parse_fault_spec(spec)
        self._lock = threading.Lock()
        self._fired: Dict[int, int] = {}

    def _should_fire(self, idx: int, rule: FaultRule, site: str, key: str, attempt: int) -> bool:
        if rule.n is not None:
            with self._lock:
                if self._fired.get(idx, 0) >= rule.n:
                    return False
                self._fired[idx] = self._fired.get(idx, 0) + 1
                return True
        return _uniform_draw(rule.seed, site, key, attempt) < rule.p

    def fire(self, site: str, key: str, attempt: int, kinds: Tuple[str, ...]) -> None:
        """Evaluate matching rules at one decision point; may not return."""
        for idx, rule in enumerate(self.rules):
            if rule.kind not in kinds:
                continue
            if not self._should_fire(idx, rule, site, key, attempt):
                continue
            _metrics.inc("resil.faults_injected")
            _metrics.inc(f"resil.fault.{rule.kind}")
            if rule.kind == "slow_task":
                time.sleep(rule.ms / 1000.0)
                continue
            if rule.kind == "worker_crash":
                if multiprocessing.parent_process() is not None:
                    # A real pool worker: die like the OOM killer struck.
                    os._exit(CRASH_EXIT_CODE)
                raise WorkerCrashFault(
                    "injected worker crash (serial mode)",
                    site=site,
                    key=key,
                    attempt=attempt,
                )
            if rule.kind == "transient":
                raise TransientFault(
                    "injected transient fault",
                    site=site,
                    key=key,
                    attempt=attempt,
                )
            raise ConvergenceStallFault(
                "injected convergence stall",
                site=site,
                key=key,
                attempt=attempt,
            )


_plan_lock = threading.Lock()
_plan_cache: Optional[Tuple[str, FaultPlan]] = None


def active_plan() -> Optional[FaultPlan]:
    """The plan for the current ``REPRO_FAULT_SPEC``, or None.

    Cached per spec string: counters (``n=`` rules) persist while the
    spec is unchanged and reset when it changes -- which is also what
    lets tests swap specs via monkeypatched environments.
    """
    global _plan_cache
    spec = os.environ.get(FAULT_SPEC_ENV, "").strip()
    if not spec:
        with _plan_lock:
            _plan_cache = None
        return None
    with _plan_lock:
        if _plan_cache is not None and _plan_cache[0] == spec:
            return _plan_cache[1]
        plan = FaultPlan(spec)
        _log.warning(
            "fault injection active: %s",
            "; ".join(r.describe() for r in plan.rules),
            extra={"fields": {"spec": spec}},
        )
        _plan_cache = (spec, plan)
        return plan


def fault_injection_active() -> bool:
    """Whether a fault spec is set (cheap guard for hot paths)."""
    return bool(os.environ.get(FAULT_SPEC_ENV, "").strip())


def check_task(key: str, attempt: int = 0, site: str = "task") -> None:
    """Task-level decision point: worker_crash / transient / slow_task."""
    plan = active_plan()
    if plan is not None:
        plan.fire(site, key, attempt, ("worker_crash", "transient", "slow_task"))


def check_cg(key: str, attempt: int = 0) -> None:
    """Iterative-solve decision point: cg_stall."""
    plan = active_plan()
    if plan is not None:
        plan.fire("cg", key, attempt, ("cg_stall",))
