"""Retry policy, backoff, and structured task-failure records.

The contract change this module carries: a failed design point is
*data*, not a crash.  :class:`TaskFailure` captures what a task's dying
exception knew -- type, message, the :class:`~repro.errors.ReproError`
structured context, how many attempts were spent -- in a picklable,
JSON-able record that rides back in a
:class:`~repro.resil.execute.TaskReport` next to the results that did
complete.

:class:`RetryPolicy` decides how hard to try before giving up:

* ``max_attempts`` bounded retries for *transient* failures (worker
  crashes, pool breakage, injected faults, timeouts).  Deterministic
  errors -- a singular matrix is singular on every retry -- fail
  immediately; retrying them only burns wall time.
* exponential backoff with deterministic jitter (hashed from the task
  key, not ``random``): replays are reproducible and concurrent
  retries still decorrelate.
* ``task_timeout_s`` per-task deadline, enforced by the parallel
  executor (a serial caller cannot preempt itself).

Env knobs (all warn-and-default via :mod:`repro.envcfg`):
``REPRO_RETRY_MAX``, ``REPRO_RETRY_DELAY`` (seconds, base),
``REPRO_TASK_TIMEOUT`` (seconds, 0 disables), ``REPRO_POOL_REBUILDS``.
"""

from __future__ import annotations

import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, TypeVar

from repro import envcfg
from repro.errors import ReproError
from repro.obs import metrics as _metrics
from repro.obs.log import get_logger
from repro.resil import faults

_log = get_logger("resil.retry")

R = TypeVar("R")

RETRY_MAX_ENV = "REPRO_RETRY_MAX"
RETRY_DELAY_ENV = "REPRO_RETRY_DELAY"
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
POOL_REBUILDS_ENV = "REPRO_POOL_REBUILDS"

DEFAULT_MAX_ATTEMPTS = 4
DEFAULT_BASE_DELAY_S = 0.05
DEFAULT_MAX_DELAY_S = 2.0
DEFAULT_POOL_REBUILDS = 8

#: Exception types retried as transient.  Everything else is assumed
#: deterministic and fails fast.
TRANSIENT_TYPES = (
    faults.InjectedFault,
    BrokenProcessPool,
    TimeoutError,
    ConnectionError,
    MemoryError,
)


@dataclass
class TaskFailure:
    """What remains of a task that exhausted its attempts."""

    index: int
    item: str
    error_type: str
    message: str
    attempts: int
    context: Dict[str, object] = field(default_factory=dict)
    timed_out: bool = False
    #: The final exception, kept parent-side for re-raising; excluded
    #: from serialization (``to_dict``) on purpose.
    exception: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "item": self.item,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "context": dict(self.context),
            "timed_out": self.timed_out,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TaskFailure":
        return cls(
            index=int(data["index"]),
            item=str(data["item"]),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
            attempts=int(data["attempts"]),
            context=dict(data.get("context", {})),  # type: ignore[arg-type]
            timed_out=bool(data.get("timed_out", False)),
        )

    @classmethod
    def from_exception(
        cls,
        index: int,
        item: Any,
        exc: BaseException,
        attempts: int,
        timed_out: bool = False,
    ) -> "TaskFailure":
        context: Dict[str, object] = {}
        if isinstance(exc, ReproError):
            context = dict(exc.context)
        text = repr(item)
        if len(text) > 200:
            text = text[:197] + "..."
        return cls(
            index=index,
            item=text,
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=attempts,
            context=context,
            timed_out=timed_out,
            exception=exc,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor tries before recording a failure."""

    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    base_delay_s: float = DEFAULT_BASE_DELAY_S
    max_delay_s: float = DEFAULT_MAX_DELAY_S
    task_timeout_s: Optional[float] = None
    pool_rebuilds: int = DEFAULT_POOL_REBUILDS

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        timeout = envcfg.env_float(TASK_TIMEOUT_ENV, 0.0, minimum=0.0)
        return cls(
            max_attempts=envcfg.env_int(
                RETRY_MAX_ENV, DEFAULT_MAX_ATTEMPTS, minimum=1
            ),
            base_delay_s=envcfg.env_float(
                RETRY_DELAY_ENV, DEFAULT_BASE_DELAY_S, minimum=0.0
            ),
            task_timeout_s=timeout if timeout > 0 else None,
            pool_rebuilds=envcfg.env_int(
                POOL_REBUILDS_ENV, DEFAULT_POOL_REBUILDS, minimum=0
            ),
        )

    def is_transient(self, exc: BaseException) -> bool:
        return isinstance(exc, TRANSIENT_TYPES)

    def backoff_s(self, attempt: int, key: str = "") -> float:
        """Delay before retry ``attempt`` (1-based), jittered.

        Exponential base with up to +50% jitter drawn deterministically
        from ``(key, attempt)`` -- replayable, yet different tasks
        retrying concurrently spread out instead of thundering back in
        lockstep.
        """
        if self.base_delay_s <= 0:
            return 0.0
        base = self.base_delay_s * (2 ** max(0, attempt - 1))
        jitter = faults._uniform_draw(0, "backoff", key, attempt) * 0.5
        return min(base * (1.0 + jitter), self.max_delay_s)


def protected_call(
    fn: Callable[[], R],
    site: str,
    key: str,
    policy: Optional[RetryPolicy] = None,
) -> R:
    """Run ``fn`` under fault injection + transient retry, serially.

    This is the chaos/retry hook for in-process solve sites (experiment
    drivers run sweeps serially by default).  Without an active fault
    plan it is a plain call -- zero overhead, bitwise-identical
    behavior; genuine in-process solve failures are deterministic, so
    retrying them blind would only mask bugs.  Under an active plan,
    injected transients are retried with backoff up to the policy's
    attempt budget, and the exhausted exception carries
    ``site``/``key``/``attempts`` context.
    """
    if not faults.fault_injection_active():
        return fn()
    policy = policy or RetryPolicy.from_env()
    attempt = 0
    while True:
        try:
            faults.check_task(key, attempt=attempt, site=site)
            return fn()
        except Exception as exc:
            attempt += 1
            if not policy.is_transient(exc) or attempt >= policy.max_attempts:
                if isinstance(exc, ReproError):
                    exc.add_context(site=site, task_key=key, attempts=attempt)
                _metrics.inc("resil.task_failures")
                raise
            _metrics.inc("resil.retries")
            delay = policy.backoff_s(attempt, key=key)
            _log.warning(
                "transient failure at %s[%s] (attempt %d/%d): %s; retrying",
                site,
                key,
                attempt,
                policy.max_attempts,
                exc,
                extra={
                    "fields": {
                        "site": site,
                        "key": key,
                        "attempt": attempt,
                        "error": type(exc).__name__,
                    }
                },
            )
            if delay > 0:
                time.sleep(delay)
