"""Calibration harness: print model outputs against every paper anchor.

Run after touching repro/tech/calibration.py or repro/power/model.py:

    python scripts/calibrate.py

Each line shows  anchor-name  paper-value  ->  model-value.
"""

from __future__ import annotations

import sys

from repro.floorplan import ddr3_die_floorplan, t2_logic_floorplan
from repro.pdn import (
    Bonding,
    BumpLocation,
    Mounting,
    PDNConfig,
    RDLScope,
    StackSpec,
    TSVLocation,
    build_stack,
)
from repro.pdn.stackup import build_single_die_stack
from repro.power import MemoryState
from repro.power.model import DDR3_POWER, T2_LOGIC_POWER


def row(name: str, paper: float, model: float) -> None:
    err = (model - paper) / paper * 100.0 if paper else float("nan")
    print(f"{name:45s} paper {paper:8.2f}  model {model:8.2f}  ({err:+6.1f}%)")


def main() -> None:
    fp = ddr3_die_floorplan()
    logic_fp = t2_logic_floorplan()

    off_spec = StackSpec("ddr3_off", fp, DDR3_POWER, 4, Mounting.OFF_CHIP)
    on_spec = StackSpec(
        "ddr3_on", fp, DDR3_POWER, 4, Mounting.ON_CHIP, logic_fp, T2_LOGIC_POWER
    )
    base = PDNConfig()
    s0002 = MemoryState.from_string("0-0-0-2", fp)

    # --- 2D anchors --------------------------------------------------------
    two_d = build_single_die_stack(fp, DDR3_POWER)
    one_bank = MemoryState(((0,),))
    two_banks = MemoryState(((0, 1),))  # the "left two banks" of Figure 4
    row("2D one-bank read (mV)", 22.5, two_d.dram_max_mv(one_bank))
    row("2D two-bank interleave (mV)", 32.2, two_d.dram_max_mv(two_banks))

    # --- mounting ----------------------------------------------------------
    off = build_stack(off_spec, base)
    row("off-chip F2B baseline 0-0-0-2", 30.03, off.dram_max_mv(s0002))
    on = build_stack(on_spec, base.with_options(dedicated_tsv=True))
    res_on_ded = on.solve_state(s0002)
    row("on-chip dedicated TSV", 31.18, res_on_ded.dram_max_mv)
    on_coupled = build_stack(on_spec, base)
    res_on = on_coupled.solve_state(s0002)
    row("on-chip coupled", 64.41, res_on.dram_max_mv)
    row("logic self noise", 50.05, res_on.logic_max_mv)

    # --- packaging ----------------------------------------------------------
    f2f = build_stack(off_spec, base.with_options(bonding=Bonding.F2F))
    row("off-chip F2F+B2B 0-0-0-2", 17.18, f2f.dram_max_mv(s0002))
    on_wb = build_stack(on_spec, base.with_options(wire_bond=True))
    row("on-chip wire-bonded", 30.04, on_wb.dram_max_mv(s0002))
    on_ded_wb = build_stack(
        on_spec, base.with_options(dedicated_tsv=True, wire_bond=True)
    )
    row("on-chip dedicated + WB", 27.18, on_ded_wb.dram_max_mv(s0002))
    off_wb_ded = build_stack(off_spec, base.with_options(wire_bond=True))
    row("off-chip wire-bonded", 27.10, off_wb_ded.dram_max_mv(s0002))

    # --- metal usage ---------------------------------------------------------
    dbl = build_stack(off_spec, base.with_options(m2_usage=0.20, m3_usage=0.40))
    v = dbl.dram_max_mv(s0002)
    print(
        f"{'2x metal usage reduction':45s} paper >40%      "
        f"model {100 * (1 - v / off.dram_max_mv(s0002)):6.1f}%  ({v:.2f} mV)"
    )

    # --- Table 2: TSV location and RDL ---------------------------------------
    t2a = off  # edge TSV, bumps match (baseline)
    t2b = build_stack(off_spec, base.with_options(tsv_location=TSVLocation.CENTER,
                                                  bump_location=BumpLocation.CENTER))
    t2c = build_stack(off_spec, base.with_options(bump_location=BumpLocation.CENTER,
                                                  rdl=RDLScope.ALL))
    t2d = build_stack(off_spec, base.with_options(tsv_location=TSVLocation.CENTER,
                                                  bump_location=BumpLocation.CENTER,
                                                  rdl=RDLScope.ALL))
    row("Table2a edge+match", 30.03, t2a.dram_max_mv(s0002))
    row("Table2b center+center", 50.76, t2b.dram_max_mv(s0002))
    row("Table2c edge+center+RDL", 38.46, t2c.dram_max_mv(s0002))
    row("Table2d center+center+RDL", 49.36, t2d.dram_max_mv(s0002))

    # --- Table 4 subset (F2F overlap) -----------------------------------------
    st_22aa = MemoryState.from_string("0-0-2a-2a", fp)
    st_2a02a = MemoryState.from_string("0-2a-0-2a", fp)
    row("0-0-2a-2a F2B", 28.14, off.dram_max_mv(st_22aa))
    row("0-0-2a-2a F2F", 27.21, f2f.dram_max_mv(st_22aa))
    row("0-2a-0-2a F2B", 27.32, off.dram_max_mv(st_2a02a))
    row("0-2a-0-2a F2F", 15.24, f2f.dram_max_mv(st_2a02a))

    # --- Table 5 subset ----------------------------------------------------------
    st_2000 = MemoryState.from_string("2-0-0-0", fp)
    st_2222 = MemoryState.from_string("2-2-2-2", fp)
    row("2-0-0-0 F2B", 26.26, off.dram_max_mv(st_2000))
    row("0-0-0-2 F2F", 17.18, f2f.dram_max_mv(s0002))
    row("2-2-2-2 F2B", 24.82, off.dram_max_mv(st_2222))
    row("2-2-2-2 F2F", 23.57, f2f.dram_max_mv(st_2222))





def benchmarks_section() -> None:
    """Table 9 anchors: baseline and alpha=0 rows for all four designs."""
    from repro.designs import all_benchmarks
    from repro.pdn import build_stack

    paper_baseline = {"ddr3_off": 30.03, "ddr3_on": 31.18, "wideio": 13.62, "hmc": 47.90}
    paper_alpha0 = {"ddr3_off": 88.73, "ddr3_on": 117.6, "wideio": 110.2, "hmc": 459.7}
    for key, b in all_benchmarks().items():
        state = b.reference_state()
        base = build_stack(b.stack, b.baseline)
        row(f"{key} baseline (Table 9)", paper_baseline[key], base.dram_max_mv(state))
        lo_tc = max(15, b.tsv_count_range[0])
        cfg0 = b.baseline.with_options(
            m2_usage=0.10, m3_usage=0.10, tsv_count=lo_tc,
            tsv_location=TSVLocation.CENTER, dedicated_tsv=False,
            bonding=Bonding.F2B, rdl=RDLScope.NONE, wire_bond=False,
            bump_location=BumpLocation.CENTER,
        )
        alpha0 = build_stack(b.stack, cfg0)
        row(f"{key} alpha=0 (Table 9)", paper_alpha0[key], alpha0.dram_max_mv(state))


if __name__ == "__main__":
    main()
    benchmarks_section()
