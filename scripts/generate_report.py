"""Generate a markdown reproduction report.

Two modes:

    python scripts/generate_report.py --archived     # bundle benchmarks/results/*.txt
    python scripts/generate_report.py table2 table3  # re-run experiments (fast)

Writes to stdout, or to --output.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import registry, run_experiment
from repro.reporting import archived_tables_to_markdown, results_to_markdown


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=sorted(registry) + [[]],
        help="experiment ids to (re)run; omit with --archived",
    )
    parser.add_argument(
        "--archived",
        action="store_true",
        help="bundle the archived bench tables instead of re-running",
    )
    parser.add_argument("--full", action="store_true", help="full sweeps")
    parser.add_argument("--output", type=Path, help="write to a file")
    args = parser.parse_args(argv)

    if args.archived:
        results_dir = Path(__file__).parent.parent / "benchmarks" / "results"
        text = archived_tables_to_markdown(results_dir)
    else:
        ids = args.experiments or sorted(registry)
        results = [run_experiment(i, fast=not args.full) for i in ids]
        text = results_to_markdown(results)

    if args.output:
        args.output.write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
