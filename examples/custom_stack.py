"""Bring your own design: a custom die, stack and power model.

Shows the library as a downstream user would extend it: define a new
2-channel mobile DRAM die floorplan, give it a power model, stack eight
of them on a host logic die, and study bonding/wire-bond options --
none of which appears in the paper's four benchmarks.

Run:  python examples/custom_stack.py
"""

from repro import Bonding, MemoryState, Mounting, PDNConfig, StackSpec, build_stack
from repro.floorplan import Block, BlockType, DieFloorplan, t2_logic_floorplan
from repro.floorplan.blocks import grid_rects
from repro.geometry import Rect
from repro.power.model import DramPowerSpec, T2_LOGIC_POWER


def my_die_floorplan() -> DieFloorplan:
    """A small 5 x 5 mm die: 2 channels x 4 banks around a center spine."""
    outline = Rect(0.0, 0.0, 5.0, 5.0)
    blocks = [Block(Rect(0.0, 2.2, 5.0, 2.8), BlockType.IO, "spine")]
    for half, (y0, y1), first in (("lo", (0.15, 2.2), 0), ("hi", (2.8, 4.85), 4)):
        cells = grid_rects(Rect(0.15, y0, 4.85, y1), cols=4, rows=1, gap_x=0.1)[0]
        for col, cell in enumerate(cells):
            bank_id = first + col
            blocks.append(
                Block(
                    cell,
                    BlockType.BANK,
                    f"bank{bank_id}",
                    bank_id=bank_id,
                    channel=0 if bank_id < 4 else 1,
                )
            )
    return DieFloorplan("my_dram", outline, blocks)


MY_POWER = DramPowerSpec(
    standby_mw=10.0,
    io_base_mw=6.0,
    io_dyn_mw=12.0,
    bank_static_mw=14.0,
    bank_dyn_mw=20.0,
    decoder_fraction=0.3,
)


def main() -> None:
    fp = my_die_floorplan()
    spec = StackSpec(
        name="my_8_high_stack",
        dram_floorplan=fp,
        dram_power=MY_POWER,
        num_dram_dies=8,  # taller than anything in the paper
        mounting=Mounting.ON_CHIP,
        logic_floorplan=t2_logic_floorplan(),
        logic_power=T2_LOGIC_POWER,
    )

    # A custom design point (still within the Table 8 legal space).
    config = PDNConfig(m2_usage=0.15, m3_usage=0.30, tsv_count=64)

    # Worst case: both channels active on the top die.
    state = MemoryState.from_counts((0,) * 7 + (4,), fp)

    print(f"custom stack: {spec.num_dram_dies} dies of {fp.name}, "
          f"{fp.num_banks} banks / {fp.num_channels} channels each")
    for label, cfg in [
        ("F2B baseline", config),
        ("F2B + dedicated TSVs", config.with_options(dedicated_tsv=True)),
        ("F2F pairs", config.with_options(bonding=Bonding.F2F)),
        ("F2B + wire bonds", config.with_options(wire_bond=True)),
    ]:
        stack = build_stack(spec, cfg)
        result = stack.solve_state(state)
        print(
            f"  {label:24s} DRAM max {result.dram_max_mv:6.2f} mV "
            f"(logic {result.logic_max_mv:5.2f} mV, "
            f"{result.total_power_mw:7.1f} mW)"
        )

    # Per-die profile of the tall stack under the baseline.
    stack = build_stack(spec, config)
    result = stack.solve_state(state)
    print("\nper-die IR drop up the 8-high stack (F2B):")
    for die, mv in result.per_die_mv.items():
        print(f"  {die}: {mv:6.2f} mV")


if __name__ == "__main__":
    main()
