"""Supply-window analysis: VDD droop + VSS bounce, with hotspot maps.

Extends the paper's VDD-only analysis the way its section 2.2 suggests
("the ground net can be analyzed in complementary fashion"): solve both
rails, report the total supply-window collapse, and render ASCII hotspot
maps of the worst die.

Run:  python examples/supply_window.py
"""

from repro import MemoryState, benchmark
from repro.controller import IRDropLUT
from repro.pdn import build_stack
from repro.pdn.ground import GroundNetAnalysis


def main() -> None:
    bench = benchmark("ddr3_off")
    fp = bench.stack.dram_floorplan

    # Both rails, symmetric straps (the DRAM default) and a VSS-starved
    # variant (straps reallocated toward VDD).
    print("supply window (VDD droop + VSS bounce), state 0-0-0-2:")
    state = MemoryState.from_string("0-0-0-2", fp)
    for label, ratio in (("symmetric rails", 1.0), ("VSS straps at 70%", 0.7)):
        analysis = GroundNetAnalysis(
            bench.stack, bench.baseline, vss_usage_ratio=ratio
        )
        print(f"  {label:20s} {analysis.solve_state(state)}")

    # Hotspot map of the worst die: the edge-column banks and their
    # decoder segments light up.
    stack = build_stack(bench.stack, bench.baseline)
    result = stack.solve_state(state)
    print("\nhotspot map of the top die (device layer):")
    print(result.raw.ascii_heatmap("dram4/M1"))

    # Ship the controller's table: the LUT as a firmware artifact.
    lut = IRDropLUT(stack)
    artifact = lut.to_json()
    print(f"\nserialized IR-drop LUT: {len(artifact)} bytes, "
          f"{lut.size} states; first lines:")
    print("\n".join(artifact.splitlines()[:6]))


if __name__ == "__main__":
    main()
