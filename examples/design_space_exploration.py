"""Design-space exploration and co-optimization (paper section 6).

Samples the Table 8 design space of the off-chip stacked DDR3 with full
R-Mesh solves, fits the regression surrogate, and runs the IR-cost
co-optimization across the alpha tradeoff -- the Table 9 flow end to end.

Run:  python examples/design_space_exploration.py
"""

import time

from repro import benchmark
from repro.opt import CoOptimizer, ir_cost


def main() -> None:
    bench = benchmark("ddr3_off")
    print(f"co-optimizing: {bench.title}")

    # Building the optimizer samples the design space (R-Mesh solves) and
    # fits the surrogate (the paper's MATLAB regression step).
    t0 = time.perf_counter()
    opt = CoOptimizer(bench)
    report = opt.surrogate.report
    print(
        f"sampled {report.num_samples} design points over "
        f"{report.num_combos} discrete combos in {report.sample_time_s:.1f}s"
    )
    print(f"surrogate quality: RMSE {report.rmse_mv:.2f} mV, "
          f"R^2 {report.r_squared:.4f}")
    print(f"(projected exhaustive search: {opt.brute_force_size():,} solves)")

    # The baseline the industry ships today.
    base = opt.baseline_result()
    print(f"\nbaseline  {base.table9_row()}")

    # Sweep the IR-vs-cost tradeoff (Equation 1).
    for result in opt.alpha_sweep(alphas=(0.0, 0.3, 1.0)):
        print(f"optimal   {result.table9_row()}")

    # How much headroom does the preferred tradeoff buy?
    best = opt.optimize(0.3)
    base_obj = ir_cost(base.verified_ir_mv, base.cost, 0.3)
    best_obj = ir_cost(best.verified_ir_mv, best.cost, 0.3)
    print(
        f"\nalpha=0.3 objective: baseline {base_obj:.3f} -> optimal "
        f"{best_obj:.3f} ({100 * (1 - best_obj / base_obj):.1f}% better)"
    )
    print(f"total exploration time {time.perf_counter() - t0:.1f}s")


if __name__ == "__main__":
    main()
