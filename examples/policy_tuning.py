"""Architectural policy tuning (paper section 5).

Builds the IR-drop look-up table for a design, then compares the JEDEC
standard policy against the IR-drop-aware FCFS and distributed-read
policies across a range of IR-drop constraints -- the Table 6 / Figure 9
study on a workload of your own.

Run:  python examples/policy_tuning.py
"""

from repro import benchmark, build_stack
from repro.controller import (
    IRAwareDistR,
    IRAwareFCFS,
    IRDropLUT,
    MemoryControllerSim,
    SimConfig,
    StandardJEDEC,
    WorkloadConfig,
    generate_workload,
)
from repro.dram.timing import TimingParams
from repro.errors import SimulationError


def main() -> None:
    bench = benchmark("ddr3_off")
    stack = build_stack(bench.stack, bench.baseline)

    # One factorization, 81 back-substitutions: the controller's LUT.
    lut = IRDropLUT(stack)
    print("IR-drop LUT highlights (mV):")
    for counts in ((0, 0, 0, 1), (0, 0, 0, 2), (1, 1, 1, 1), (2, 2, 2, 2)):
        print(f"  {'-'.join(map(str, counts))}: {lut.lookup(counts):6.2f}")
    print(f"  cheapest non-idle state: {lut.min_active_ir():.2f} mV")

    timing = TimingParams.ddr3_1600()
    cfg = SimConfig(timing=timing)
    workload = WorkloadConfig(num_requests=4000)

    # Table 6: the three policies at the paper's 24 mV constraint.
    print("\npolicy comparison @ 24 mV:")
    for policy in (
        StandardJEDEC(timing),
        IRAwareFCFS(lut, 24.0),
        IRAwareDistR(lut, 24.0),
    ):
        sim = MemoryControllerSim(
            cfg, policy, generate_workload(workload), report_lut=lut
        )
        print(f"  {sim.run()}")

    # Figure 9 flavour: how tight can the constraint go?
    print("\nDistR runtime vs IR-drop constraint:")
    for constraint in (28.0, 24.0, 21.0, 18.0, 16.0):
        policy = IRAwareDistR(lut, constraint)
        sim = MemoryControllerSim(
            cfg, policy, generate_workload(workload), report_lut=lut
        )
        try:
            res = sim.run(max_cycles=400_000)
            text = f"{res.runtime_us:8.1f} us" if res.finished else "  (did not finish)"
        except SimulationError:
            text = "  (livelock: constraint forbids required states)"
        print(f"  {constraint:4.0f} mV -> {text}")


if __name__ == "__main__":
    main()
