"""Quickstart: solve the IR drop of a 3D DRAM stack.

Builds the paper's off-chip stacked-DDR3 baseline, solves the default
IDD7 memory state (two banks interleaving on the top die), and shows how
design and packaging options move the number.

Run:  python examples/quickstart.py
"""

from repro import Bonding, MemoryState, benchmark, build_stack


def main() -> None:
    # 1. Pick a benchmark: the off-chip stacked DDR3 of Kang et al.
    bench = benchmark("ddr3_off")
    print(f"benchmark: {bench.title}")
    print(f"  die: {bench.stack.dram_floorplan.outline.width:.1f} x "
          f"{bench.stack.dram_floorplan.outline.height:.1f} mm, "
          f"{bench.stack.dram_floorplan.num_banks} banks, "
          f"{bench.stack.num_dram_dies} dies")

    # 2. Build the industry-baseline PDN (Table 9 "Baseline" row).
    stack = build_stack(bench.stack, bench.baseline)
    print(f"  network: {stack.model.num_nodes} nodes, "
          f"{stack.model.num_resistors} resistors")

    # 3. Solve the worst-case read state ("0-0-0-2": two banks active on
    #    the top die, the paper's default IDD7 state).
    state = MemoryState.from_string("0-0-0-2", bench.stack.dram_floorplan)
    result = stack.solve_state(state)
    print(f"\nbaseline {result}")
    for die, mv in result.per_die_mv.items():
        print(f"  {die}: {mv:6.2f} mV")

    # 4. Try the paper's packaging solutions.
    for label, config in [
        ("F2F + B2B bonding (PDN sharing)",
         bench.baseline.with_options(bonding=Bonding.F2F)),
        ("backside wire bonding",
         bench.baseline.with_options(wire_bond=True)),
        ("2x PDN metal usage",
         bench.baseline.with_options(m2_usage=0.20, m3_usage=0.40)),
    ]:
        ir = build_stack(bench.stack, config).dram_max_mv(state)
        delta = 100.0 * (ir / result.dram_max_mv - 1.0)
        print(f"{label:38s} {ir:6.2f} mV ({delta:+.1f}%)")


if __name__ == "__main__":
    main()
